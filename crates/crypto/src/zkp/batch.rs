//! Small-exponent batch verification (Bellare–Garay–Rabin).
//!
//! A sigma-protocol verification is an equation `∏ lᵢ == ∏ rⱼ` over a
//! prime-order group. Given many such equations, drawing an
//! independent nonzero 64-bit multiplier `ℓ` per equation and checking
//! the single combined equation
//!
//! ```text
//!   ∏_claims (∏ lᵢ)^ℓ  ==  ∏_claims (∏ rⱼ)^ℓ
//! ```
//!
//! accepts any batch of valid equations with probability 1 and a batch
//! containing an invalid one with probability ≤ 2⁻⁶⁴ (the chance the
//! random multipliers land in the kernel of the nonzero discrepancy —
//! `1/min(2⁶⁴, q)` for order-`q` groups). The combined product is one
//! [`multi_exp_n`] per side — all terms share a squaring chain, and
//! repeated bases (the protocol generators) fold into single terms —
//! instead of one full multi-exponentiation per equation. At protocol
//! widths those multi-exponentiations run on the fixed-width `FpMont`
//! kernels, where the 64-bit multipliers put the evaluator in
//! Pippenger's regime from ~16 bases (EXPERIMENTS.md A12).
//!
//! Callers keep per-item accept/reject decisions **bit-identical** to
//! sequential verification by construction: items that cannot be
//! expressed as claims fall back to the sequential verifier, and a
//! combined-check failure triggers bisection whose base case is the
//! sequential verifier. The combined check can only ever *accept* a
//! whole sub-batch, never reject an individual item.
//!
//! Soundness requires every base of every claim to lie in the
//! prime-order subgroup — extractors screen bases with the cheap
//! Jacobi membership test before emitting a claim.
//!
//! [`multi_exp_n`]: crate::group::SchnorrGroup::multi_exp_n

use crate::group::SchnorrGroup;
use ppms_bigint::BigUint;
use rand::Rng;
use std::collections::HashMap;

/// One verification equation `∏ baseᵢ^expᵢ == ∏ baseⱼ^expⱼ` in a
/// prime-order group. Exponents must already be reduced modulo the
/// group order.
///
/// Convention: keep prover-supplied *commitments* on the right-hand
/// side with exponent 1, so their scaled exponents stay 64-bit (the
/// multiplier itself) and the combined right side is a
/// Pippenger-friendly many-bases/small-exponents shape.
#[derive(Debug, Clone)]
pub struct GroupClaim {
    /// Left-hand terms, typically `(generator, response)` pairs.
    pub lhs: Vec<(BigUint, BigUint)>,
    /// Right-hand terms, typically `(commitment, 1)`.
    pub rhs: Vec<(BigUint, BigUint)>,
}

struct Slot<'g> {
    group: &'g SchnorrGroup,
    lhs: HashMap<BigUint, BigUint>,
    rhs: HashMap<BigUint, BigUint>,
}

/// Accumulates randomly-scaled [`GroupClaim`]s, one slot per distinct
/// group, and verifies them all with two [`multi_exp_n`] calls per
/// slot.
///
/// [`multi_exp_n`]: crate::group::SchnorrGroup::multi_exp_n
#[derive(Default)]
pub struct BatchAccumulator<'g> {
    slots: Vec<Slot<'g>>,
}

impl<'g> BatchAccumulator<'g> {
    pub fn new() -> Self {
        BatchAccumulator { slots: Vec::new() }
    }

    /// Whether any claim has been pushed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Folds `claim` into the accumulator under a fresh nonzero 64-bit
    /// multiplier drawn from `rng`. Each claim MUST get its own
    /// multiplier — reusing one across claims lets discrepancies
    /// cancel.
    pub fn push<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        group: &'g SchnorrGroup,
        claim: &GroupClaim,
    ) {
        let mut l = 0u64;
        while l == 0 {
            l = rng.next_u64();
        }
        let l = BigUint::from(l);
        let slot = match self.slots.iter_mut().position(|s| s.group.p == group.p) {
            Some(i) => &mut self.slots[i],
            None => {
                self.slots.push(Slot {
                    group,
                    lhs: HashMap::new(),
                    rhs: HashMap::new(),
                });
                self.slots.last_mut().unwrap()
            }
        };
        for (side, terms) in [(&mut slot.lhs, &claim.lhs), (&mut slot.rhs, &claim.rhs)] {
            for (base, e) in terms {
                debug_assert!(e < &group.q, "claim exponents must be reduced mod q");
                let scaled = l.modmul(e, &group.q);
                side.entry(base.clone())
                    .and_modify(|cur| *cur = (&*cur + &scaled) % &group.q)
                    .or_insert(scaled);
            }
        }
    }

    /// The combined check: per group, `∏ lhs == ∏ rhs` over the folded
    /// terms. `true` means every pushed claim holds except with
    /// probability ≤ 2⁻⁶⁴ per invalid claim; `false` says nothing
    /// about individual claims (bisect or verify sequentially).
    pub fn verify(&self) -> bool {
        let _span = ppms_obs::timed!("zkp.batch_combined_ns");
        self.slots.iter().all(|slot| {
            let lhs: Vec<(&BigUint, &BigUint)> = slot.lhs.iter().collect();
            let rhs: Vec<(&BigUint, &BigUint)> = slot.rhs.iter().collect();
            let ring = slot.group.ring();
            ring.multi_pow_n(&lhs) == ring.multi_pow_n(&rhs)
        })
    }
}

/// Generic bisection driver: `indices` identifies items whose claims
/// are in `claims`; `combined` runs the accumulator over a subset and
/// `sequential` is the ground-truth per-item verifier. Returns
/// per-item verdicts bit-identical to running `sequential` on every
/// item.
pub fn bisect_verify<R, C, S>(
    rng: &mut R,
    indices: &[usize],
    results: &mut [bool],
    combined: &mut C,
    sequential: &mut S,
) where
    R: Rng + ?Sized,
    C: FnMut(&mut R, &[usize]) -> bool,
    S: FnMut(usize) -> bool,
{
    if indices.is_empty() {
        return;
    }
    if combined(rng, indices) {
        for &i in indices {
            results[i] = true;
        }
        return;
    }
    if indices.len() == 1 {
        results[indices[0]] = sequential(indices[0]);
        return;
    }
    let (lo, hi) = indices.split_at(indices.len() / 2);
    bisect_verify(rng, lo, results, combined, sequential);
    bisect_verify(rng, hi, results, combined, sequential);
}
