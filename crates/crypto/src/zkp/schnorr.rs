//! Schnorr proof of knowledge of a discrete logarithm (paper ref \[34\]):
//! `PoK{ x : y = g^x }`, Fiat–Shamir non-interactive.

use crate::group::SchnorrGroup;
use crate::zkp::batch::{bisect_verify, BatchAccumulator, GroupClaim};
use crate::zkp::transcript::Transcript;
use ppms_bigint::BigUint;
use rand::Rng;

/// A non-interactive Schnorr proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchnorrProof {
    /// Commitment `t = g^k`.
    pub t: BigUint,
    /// Response `s = k + c·x mod q`.
    pub s: BigUint,
}

fn bind_statement(tr: &mut Transcript, group: &SchnorrGroup, g: &BigUint, y: &BigUint) {
    tr.append_int("p", &group.p);
    tr.append_int("q", &group.q);
    tr.append_int("g", g);
    tr.append_int("y", y);
}

impl SchnorrProof {
    /// Proves knowledge of `x` with `y = g^x`. The `domain` separates
    /// protocol contexts; `extra` binds application data (e.g. the
    /// receiver identity) into the challenge.
    pub fn prove<R: Rng + ?Sized>(
        rng: &mut R,
        group: &SchnorrGroup,
        g: &BigUint,
        y: &BigUint,
        x: &BigUint,
        domain: &str,
        extra: &[u8],
    ) -> SchnorrProof {
        let _span = ppms_obs::timed!("zkp.prove_ns");
        debug_assert_eq!(&group.exp(g, x), y, "witness does not match statement");
        let k = group.random_exponent(rng);
        let t = group.exp(g, &k);
        let mut tr = Transcript::new(domain);
        bind_statement(&mut tr, group, g, y);
        tr.append("extra", extra);
        tr.append_int("t", &t);
        let c = tr.challenge_below("c", &group.q);
        let s = (&k + &c.modmul(x, &group.q)) % &group.q;
        SchnorrProof { t, s }
    }

    /// Verifies: `g^s == t · y^c`.
    pub fn verify(
        &self,
        group: &SchnorrGroup,
        g: &BigUint,
        y: &BigUint,
        domain: &str,
        extra: &[u8],
    ) -> bool {
        let _span = ppms_obs::timed!("zkp.verify_ns");
        if !group.contains(&self.t) || !group.contains(y) {
            return false;
        }
        let mut tr = Transcript::new(domain);
        bind_statement(&mut tr, group, g, y);
        tr.append("extra", extra);
        tr.append_int("t", &self.t);
        let c = tr.challenge_below("c", &group.q);
        // g^s == t · y^c  ⇔  g^s · y^(−c) == t; the left side is one
        // Shamir multi-exponentiation instead of two exponentiations.
        group.multi_exp2(g, &self.s, y, &c.modneg(&group.q)) == self.t
    }

    /// Serialized size in bytes (for traffic accounting).
    pub fn size_bytes(&self) -> usize {
        self.t.bits().div_ceil(8) + self.s.bits().div_ceil(8)
    }

    /// Expresses this proof's verification equation
    /// `g^s · y^{−c} == t` as a [`GroupClaim`] for batch combination.
    ///
    /// `None` means the item cannot go into the combined check — a
    /// membership screen failed — and the caller must decide it with
    /// the sequential [`SchnorrProof::verify`] (which performs the
    /// same screens, so decisions stay identical).
    pub fn batch_claim(
        &self,
        group: &SchnorrGroup,
        g: &BigUint,
        y: &BigUint,
        domain: &str,
        extra: &[u8],
    ) -> Option<GroupClaim> {
        if !group.contains(&self.t) || !group.contains(y) || !group.contains(g) {
            return None;
        }
        let mut tr = Transcript::new(domain);
        bind_statement(&mut tr, group, g, y);
        tr.append("extra", extra);
        tr.append_int("t", &self.t);
        let c = tr.challenge_below("c", &group.q);
        Some(GroupClaim {
            lhs: vec![
                (g.clone(), &self.s % &group.q),
                (y.clone(), c.modneg(&group.q)),
            ],
            rhs: vec![(self.t.clone(), BigUint::one())],
        })
    }
}

/// One statement/proof pair for [`batch_verify`].
#[derive(Debug, Clone)]
pub struct BatchItem<'a> {
    pub proof: &'a SchnorrProof,
    pub g: &'a BigUint,
    pub y: &'a BigUint,
    pub domain: &'a str,
    pub extra: &'a [u8],
}

/// Verifies many Schnorr proofs over one group with a single combined
/// small-exponent check (soundness error ≤ 2⁻⁶⁴ per item), bisecting
/// on failure so the returned per-item verdicts are **bit-identical**
/// to calling [`SchnorrProof::verify`] on each item.
///
/// The multipliers come from the caller's `rng`; verdicts do not
/// depend on the seed (up to the 2⁻⁶⁴ soundness error).
///
/// Span: `zkp.batch_verify_ns`.
pub fn batch_verify<R: Rng + ?Sized>(
    rng: &mut R,
    group: &SchnorrGroup,
    items: &[BatchItem<'_>],
) -> Vec<bool> {
    let _span = ppms_obs::timed!("zkp.batch_verify_ns");
    let mut results = vec![false; items.len()];
    let mut pending = Vec::with_capacity(items.len());
    let mut claims: Vec<Option<GroupClaim>> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let claim = item
            .proof
            .batch_claim(group, item.g, item.y, item.domain, item.extra);
        if claim.is_some() {
            pending.push(i);
        } else {
            // Screen failed: the sequential verifier is the decision.
            results[i] = item
                .proof
                .verify(group, item.g, item.y, item.domain, item.extra);
        }
        claims.push(claim);
    }
    let mut combined = |rng: &mut R, subset: &[usize]| {
        let mut acc = BatchAccumulator::new();
        for &i in subset {
            acc.push(rng, group, claims[i].as_ref().unwrap());
        }
        acc.verify()
    };
    let mut sequential = |i: usize| {
        let item = &items[i];
        item.proof
            .verify(group, item.g, item.y, item.domain, item.extra)
    };
    bisect_verify(rng, &pending, &mut results, &mut combined, &mut sequential);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> SchnorrGroup {
        let mut rng = StdRng::seed_from_u64(100);
        SchnorrGroup::generate(&mut rng, 64)
    }

    #[test]
    fn prove_verify() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "test", b"");
        assert!(proof.verify(&g, &g.g, &y, "test", b""));
    }

    #[test]
    fn wrong_statement_rejected() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(2);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let y2 = g.g_exp(&(&x + 1u64));
        let proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "test", b"");
        assert!(!proof.verify(&g, &g.g, &y2, "test", b""));
    }

    #[test]
    fn domain_and_extra_bind() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(3);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "ctx-A", b"receiver-1");
        assert!(proof.verify(&g, &g.g, &y, "ctx-A", b"receiver-1"));
        assert!(
            !proof.verify(&g, &g.g, &y, "ctx-B", b"receiver-1"),
            "domain must bind"
        );
        assert!(
            !proof.verify(&g, &g.g, &y, "ctx-A", b"receiver-2"),
            "extra data must bind"
        );
    }

    #[test]
    fn tampered_proof_rejected() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(4);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "t", b"");
        let mut bad = proof.clone();
        bad.s = (&bad.s + 1u64) % &g.q;
        assert!(!bad.verify(&g, &g.g, &y, "t", b""));
        let mut bad_t = proof;
        bad_t.t = g.g_exp(&BigUint::from(99u64));
        assert!(!bad_t.verify(&g, &g.g, &y, "t", b""));
    }

    #[test]
    fn non_group_commitment_rejected() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(5);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let mut proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "t", b"");
        proof.t = BigUint::zero();
        assert!(!proof.verify(&g, &g.g, &y, "t", b""));
    }

    #[test]
    fn batch_verify_all_valid_and_mixed() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(7);
        let mut proofs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..8 {
            let x = g.random_exponent(&mut rng);
            let y = g.g_exp(&x);
            proofs.push(SchnorrProof::prove(
                &mut rng,
                &g,
                &g.g.clone(),
                &y,
                &x,
                "b",
                b"x",
            ));
            ys.push(y);
        }
        let items: Vec<BatchItem> = proofs
            .iter()
            .zip(&ys)
            .map(|(proof, y)| BatchItem {
                proof,
                g: &g.g,
                y,
                domain: "b",
                extra: b"x",
            })
            .collect();
        assert_eq!(batch_verify(&mut rng, &g, &items), vec![true; 8]);

        // Corrupt items 2 and 5: bisection must name exactly those.
        let mut bad = proofs.clone();
        bad[2].s = (&bad[2].s + 1u64) % &g.q;
        bad[5].t = g.random_element(&mut rng);
        let items: Vec<BatchItem> = bad
            .iter()
            .zip(&ys)
            .map(|(proof, y)| BatchItem {
                proof,
                g: &g.g,
                y,
                domain: "b",
                extra: b"x",
            })
            .collect();
        let got = batch_verify(&mut rng, &g, &items);
        let expect: Vec<bool> = (0..8).map(|i| i != 2 && i != 5).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn batch_verify_screen_failures_fall_back() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(8);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let good = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "b", b"");
        // Out-of-group commitment: batch_claim screens it out and the
        // sequential path rejects it.
        let mut zero_t = good.clone();
        zero_t.t = BigUint::zero();
        let items = [
            BatchItem {
                proof: &good,
                g: &g.g,
                y: &y,
                domain: "b",
                extra: b"",
            },
            BatchItem {
                proof: &zero_t,
                g: &g.g,
                y: &y,
                domain: "b",
                extra: b"",
            },
        ];
        assert_eq!(batch_verify(&mut rng, &g, &items), vec![true, false]);
        assert!(batch_verify(&mut rng, &g, &[]).is_empty());
    }

    #[test]
    fn alternative_base() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(6);
        let base = g.derive_generator("other-base");
        let x = g.random_exponent(&mut rng);
        let y = g.exp(&base, &x);
        let proof = SchnorrProof::prove(&mut rng, &g, &base, &y, &x, "t", b"");
        assert!(proof.verify(&g, &base, &y, "t", b""));
        assert!(!proof.verify(&g, &g.g, &y, "t", b""), "base must bind");
    }
}
