//! Schnorr proof of knowledge of a discrete logarithm (paper ref \[34\]):
//! `PoK{ x : y = g^x }`, Fiat–Shamir non-interactive.

use crate::group::SchnorrGroup;
use crate::zkp::transcript::Transcript;
use ppms_bigint::BigUint;
use rand::Rng;

/// A non-interactive Schnorr proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchnorrProof {
    /// Commitment `t = g^k`.
    pub t: BigUint,
    /// Response `s = k + c·x mod q`.
    pub s: BigUint,
}

fn bind_statement(tr: &mut Transcript, group: &SchnorrGroup, g: &BigUint, y: &BigUint) {
    tr.append_int("p", &group.p);
    tr.append_int("q", &group.q);
    tr.append_int("g", g);
    tr.append_int("y", y);
}

impl SchnorrProof {
    /// Proves knowledge of `x` with `y = g^x`. The `domain` separates
    /// protocol contexts; `extra` binds application data (e.g. the
    /// receiver identity) into the challenge.
    pub fn prove<R: Rng + ?Sized>(
        rng: &mut R,
        group: &SchnorrGroup,
        g: &BigUint,
        y: &BigUint,
        x: &BigUint,
        domain: &str,
        extra: &[u8],
    ) -> SchnorrProof {
        let _span = ppms_obs::timed!("zkp.prove_ns");
        debug_assert_eq!(&group.exp(g, x), y, "witness does not match statement");
        let k = group.random_exponent(rng);
        let t = group.exp(g, &k);
        let mut tr = Transcript::new(domain);
        bind_statement(&mut tr, group, g, y);
        tr.append("extra", extra);
        tr.append_int("t", &t);
        let c = tr.challenge_below("c", &group.q);
        let s = (&k + &c.modmul(x, &group.q)) % &group.q;
        SchnorrProof { t, s }
    }

    /// Verifies: `g^s == t · y^c`.
    pub fn verify(
        &self,
        group: &SchnorrGroup,
        g: &BigUint,
        y: &BigUint,
        domain: &str,
        extra: &[u8],
    ) -> bool {
        let _span = ppms_obs::timed!("zkp.verify_ns");
        if !group.contains(&self.t) || !group.contains(y) {
            return false;
        }
        let mut tr = Transcript::new(domain);
        bind_statement(&mut tr, group, g, y);
        tr.append("extra", extra);
        tr.append_int("t", &self.t);
        let c = tr.challenge_below("c", &group.q);
        // g^s == t · y^c  ⇔  g^s · y^(−c) == t; the left side is one
        // Shamir multi-exponentiation instead of two exponentiations.
        group.multi_exp2(g, &self.s, y, &c.modneg(&group.q)) == self.t
    }

    /// Serialized size in bytes (for traffic accounting).
    pub fn size_bytes(&self) -> usize {
        self.t.bits().div_ceil(8) + self.s.bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> SchnorrGroup {
        let mut rng = StdRng::seed_from_u64(100);
        SchnorrGroup::generate(&mut rng, 64)
    }

    #[test]
    fn prove_verify() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "test", b"");
        assert!(proof.verify(&g, &g.g, &y, "test", b""));
    }

    #[test]
    fn wrong_statement_rejected() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(2);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let y2 = g.g_exp(&(&x + 1u64));
        let proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "test", b"");
        assert!(!proof.verify(&g, &g.g, &y2, "test", b""));
    }

    #[test]
    fn domain_and_extra_bind() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(3);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "ctx-A", b"receiver-1");
        assert!(proof.verify(&g, &g.g, &y, "ctx-A", b"receiver-1"));
        assert!(
            !proof.verify(&g, &g.g, &y, "ctx-B", b"receiver-1"),
            "domain must bind"
        );
        assert!(
            !proof.verify(&g, &g.g, &y, "ctx-A", b"receiver-2"),
            "extra data must bind"
        );
    }

    #[test]
    fn tampered_proof_rejected() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(4);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "t", b"");
        let mut bad = proof.clone();
        bad.s = (&bad.s + 1u64) % &g.q;
        assert!(!bad.verify(&g, &g.g, &y, "t", b""));
        let mut bad_t = proof;
        bad_t.t = g.g_exp(&BigUint::from(99u64));
        assert!(!bad_t.verify(&g, &g.g, &y, "t", b""));
    }

    #[test]
    fn non_group_commitment_rejected() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(5);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let mut proof = SchnorrProof::prove(&mut rng, &g, &g.g.clone(), &y, &x, "t", b"");
        proof.t = BigUint::zero();
        assert!(!proof.verify(&g, &g.g, &y, "t", b""));
    }

    #[test]
    fn alternative_base() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(6);
        let base = g.derive_generator("other-base");
        let x = g.random_exponent(&mut rng);
        let y = g.exp(&base, &x);
        let proof = SchnorrProof::prove(&mut rng, &g, &base, &y, &x, "t", b"");
        assert!(proof.verify(&g, &base, &y, "t", b""));
        assert!(!proof.verify(&g, &g.g, &y, "t", b""), "base must bind");
    }
}
