//! Proof of knowledge of a representation (paper ref \[35\]):
//! `PoK{ (x_1, …, x_n) : y = Π g_i^{x_i} }` — the multi-base
//! generalization of Schnorr, used for Pedersen-committed values.

use crate::group::SchnorrGroup;
use crate::zkp::transcript::Transcript;
use ppms_bigint::BigUint;
use rand::Rng;

/// A representation proof over `n` bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReprProof {
    /// Commitment `t = Π g_i^{k_i}`.
    pub t: BigUint,
    /// Responses `s_i = k_i + c·x_i mod q`.
    pub s: Vec<BigUint>,
}

fn bind_statement(tr: &mut Transcript, group: &SchnorrGroup, bases: &[BigUint], y: &BigUint) {
    tr.append_int("p", &group.p);
    tr.append_int("q", &group.q);
    for (i, b) in bases.iter().enumerate() {
        tr.append_int(&format!("g{i}"), b);
    }
    tr.append_int("y", y);
}

impl ReprProof {
    /// Proves knowledge of exponents `xs` with `y = Π bases_i^{xs_i}`.
    pub fn prove<R: Rng + ?Sized>(
        rng: &mut R,
        group: &SchnorrGroup,
        bases: &[BigUint],
        y: &BigUint,
        xs: &[BigUint],
        domain: &str,
        extra: &[u8],
    ) -> ReprProof {
        assert_eq!(bases.len(), xs.len());
        assert!(!bases.is_empty());
        let ks: Vec<BigUint> = bases.iter().map(|_| group.random_exponent(rng)).collect();
        let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(ks.iter()).collect();
        let t = group.multi_exp(&pairs);
        let mut tr = Transcript::new(domain);
        bind_statement(&mut tr, group, bases, y);
        tr.append("extra", extra);
        tr.append_int("t", &t);
        let c = tr.challenge_below("c", &group.q);
        let s = ks
            .iter()
            .zip(xs)
            .map(|(k, x)| (k + &c.modmul(x, &group.q)) % &group.q)
            .collect();
        ReprProof { t, s }
    }

    /// Verifies: `Π bases_i^{s_i} == t · y^c`.
    pub fn verify(
        &self,
        group: &SchnorrGroup,
        bases: &[BigUint],
        y: &BigUint,
        domain: &str,
        extra: &[u8],
    ) -> bool {
        if self.s.len() != bases.len() || !group.contains(&self.t) || !group.contains(y) {
            return false;
        }
        let mut tr = Transcript::new(domain);
        bind_statement(&mut tr, group, bases, y);
        tr.append("extra", extra);
        tr.append_int("t", &self.t);
        let c = tr.challenge_below("c", &group.q);
        let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(self.s.iter()).collect();
        let lhs = group.multi_exp(&pairs);
        lhs == group.mul(&self.t, &group.exp(y, &c))
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.t.bits().div_ceil(8) + self.s.iter().map(|s| s.bits().div_ceil(8)).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SchnorrGroup, Vec<BigUint>) {
        let mut rng = StdRng::seed_from_u64(200);
        let g = SchnorrGroup::generate(&mut rng, 64);
        let bases = vec![
            g.g.clone(),
            g.derive_generator("b1"),
            g.derive_generator("b2"),
        ];
        (g, bases)
    }

    #[test]
    fn prove_verify_three_bases() {
        let (g, bases) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<BigUint> = (0..3).map(|_| g.random_exponent(&mut rng)).collect();
        let mut y = BigUint::one();
        for (b, x) in bases.iter().zip(&xs) {
            y = g.mul(&y, &g.exp(b, x));
        }
        let proof = ReprProof::prove(&mut rng, &g, &bases, &y, &xs, "repr", b"");
        assert!(proof.verify(&g, &bases, &y, "repr", b""));
    }

    #[test]
    fn pedersen_opening_knowledge() {
        // The classic use: prove you can open a Pedersen commitment.
        let (g, _) = setup();
        let params = crate::pedersen::PedersenParams::new(g.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let c = params.commit(&mut rng, &BigUint::from(77u64));
        let bases = vec![params.g.clone(), params.h.clone()];
        let xs = vec![c.message.clone(), c.randomness.clone()];
        let proof = ReprProof::prove(&mut rng, &g, &bases, &c.value, &xs, "open", b"");
        assert!(proof.verify(&g, &bases, &c.value, "open", b""));
    }

    #[test]
    fn wrong_witness_count_rejected() {
        let (g, bases) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<BigUint> = (0..3).map(|_| g.random_exponent(&mut rng)).collect();
        let mut y = BigUint::one();
        for (b, x) in bases.iter().zip(&xs) {
            y = g.mul(&y, &g.exp(b, x));
        }
        let mut proof = ReprProof::prove(&mut rng, &g, &bases, &y, &xs, "repr", b"");
        proof.s.pop();
        assert!(!proof.verify(&g, &bases, &y, "repr", b""));
    }

    #[test]
    fn tampered_response_rejected() {
        let (g, bases) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<BigUint> = (0..3).map(|_| g.random_exponent(&mut rng)).collect();
        let mut y = BigUint::one();
        for (b, x) in bases.iter().zip(&xs) {
            y = g.mul(&y, &g.exp(b, x));
        }
        let mut proof = ReprProof::prove(&mut rng, &g, &bases, &y, &xs, "repr", b"");
        proof.s[1] = (&proof.s[1] + 1u64) % &g.q;
        assert!(!proof.verify(&g, &bases, &y, "repr", b""));
    }

    #[test]
    fn statement_binds_bases() {
        let (g, bases) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<BigUint> = (0..3).map(|_| g.random_exponent(&mut rng)).collect();
        let mut y = BigUint::one();
        for (b, x) in bases.iter().zip(&xs) {
            y = g.mul(&y, &g.exp(b, x));
        }
        let proof = ReprProof::prove(&mut rng, &g, &bases, &y, &xs, "repr", b"");
        let mut swapped = bases.clone();
        swapped.swap(0, 1);
        assert!(!proof.verify(&g, &swapped, &y, "repr", b""));
    }
}
