//! CDS OR-composition (paper refs \[37\]\[38\]): `PoK{ x : y_0 = g^x  ∨
//! y_1 = g^x }` without revealing which branch holds.
//!
//! The DEC spend uses this to show a tree edge was taken with a valid
//! direction bit without revealing the sibling structure; the classic
//! simulation trick fakes the unknown branch with a pre-chosen
//! challenge share.

use crate::group::SchnorrGroup;
use crate::zkp::batch::GroupClaim;
use crate::zkp::transcript::Transcript;
use ppms_bigint::BigUint;
use rand::Rng;

/// A two-branch OR proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrProof {
    /// Challenge shares; `c0 + c1 = c mod q`.
    pub c: [BigUint; 2],
    /// Responses per branch.
    pub s: [BigUint; 2],
    /// Commitments per branch.
    pub t: [BigUint; 2],
}

fn bind(tr: &mut Transcript, group: &SchnorrGroup, g: &BigUint, ys: &[BigUint; 2]) {
    tr.append_int("p", &group.p);
    tr.append_int("q", &group.q);
    tr.append_int("g", g);
    tr.append_int("y0", &ys[0]);
    tr.append_int("y1", &ys[1]);
}

impl OrProof {
    /// Proves knowledge of `x` such that `ys[known] = g^x`, hiding
    /// `known`.
    #[allow(clippy::too_many_arguments)] // sigma-protocol statement + witness + context
    pub fn prove<R: Rng + ?Sized>(
        rng: &mut R,
        group: &SchnorrGroup,
        g: &BigUint,
        ys: &[BigUint; 2],
        x: &BigUint,
        known: usize,
        domain: &str,
        extra: &[u8],
    ) -> OrProof {
        assert!(known < 2);
        debug_assert_eq!(&group.exp(g, x), &ys[known], "witness mismatch");
        let other = 1 - known;

        // Simulate the unknown branch: pick (c_other, s_other) first,
        // then solve for the commitment.
        let c_other = group.random_exponent(rng);
        let s_other = group.random_exponent(rng);
        let y_inv_c = group.inv(&group.exp(&ys[other], &c_other));
        let t_other = group.mul(&group.exp(g, &s_other), &y_inv_c);

        // Honest branch commitment.
        let k = group.random_exponent(rng);
        let t_known = group.exp(g, &k);

        let mut t = [BigUint::zero(), BigUint::zero()];
        t[known] = t_known;
        t[other] = t_other;

        let mut tr = Transcript::new(domain);
        bind(&mut tr, group, g, ys);
        tr.append("extra", extra);
        tr.append_int("t0", &t[0]);
        tr.append_int("t1", &t[1]);
        let c_total = tr.challenge_below("c", &group.q);

        let c_known = c_total.modsub(&c_other, &group.q);
        let s_known = (&k + &c_known.modmul(x, &group.q)) % &group.q;

        let mut c = [BigUint::zero(), BigUint::zero()];
        c[known] = c_known;
        c[other] = c_other;
        let mut s = [BigUint::zero(), BigUint::zero()];
        s[known] = s_known;
        s[other] = s_other;

        OrProof { c, s, t }
    }

    /// Verifies: both branch equations hold and the challenge shares
    /// sum to the transcript challenge.
    pub fn verify(
        &self,
        group: &SchnorrGroup,
        g: &BigUint,
        ys: &[BigUint; 2],
        domain: &str,
        extra: &[u8],
    ) -> bool {
        if !group.contains(&self.t[0]) || !group.contains(&self.t[1]) {
            return false;
        }
        let mut tr = Transcript::new(domain);
        bind(&mut tr, group, g, ys);
        tr.append("extra", extra);
        tr.append_int("t0", &self.t[0]);
        tr.append_int("t1", &self.t[1]);
        let c_total = tr.challenge_below("c", &group.q);
        if (&self.c[0] + &self.c[1]) % &group.q != c_total {
            return false;
        }
        (0..2).all(|i| {
            // g^s · y^(−c) == t via one multi-exponentiation per branch.
            group.multi_exp2(g, &self.s[i], &ys[i], &self.c[i].modneg(&group.q)) == self.t[i]
        })
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.c
            .iter()
            .chain(&self.s)
            .chain(&self.t)
            .map(|v| v.bits().div_ceil(8))
            .sum()
    }

    /// Expresses the two branch equations as [`GroupClaim`]s for batch
    /// combination. The challenge-share sum `c0 + c1 == c` is checked
    /// here (it is scalar arithmetic, not a group equation).
    ///
    /// `None` means a screen failed — either one the sequential
    /// verifier performs too (commitment membership, share sum) or the
    /// batching precondition that all bases lie in the subgroup — and
    /// the caller must decide the item with [`OrProof::verify`].
    pub fn batch_claims(
        &self,
        group: &SchnorrGroup,
        g: &BigUint,
        ys: &[BigUint; 2],
        domain: &str,
        extra: &[u8],
    ) -> Option<[GroupClaim; 2]> {
        if !group.contains(&self.t[0]) || !group.contains(&self.t[1]) {
            return None;
        }
        if !group.contains(g) || !group.contains(&ys[0]) || !group.contains(&ys[1]) {
            return None;
        }
        let mut tr = Transcript::new(domain);
        bind(&mut tr, group, g, ys);
        tr.append("extra", extra);
        tr.append_int("t0", &self.t[0]);
        tr.append_int("t1", &self.t[1]);
        let c_total = tr.challenge_below("c", &group.q);
        if (&self.c[0] + &self.c[1]) % &group.q != c_total {
            return None;
        }
        Some([0, 1].map(|i| GroupClaim {
            lhs: vec![
                (g.clone(), &self.s[i] % &group.q),
                (ys[i].clone(), self.c[i].modneg(&group.q)),
            ],
            rhs: vec![(self.t[i].clone(), BigUint::one())],
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> SchnorrGroup {
        let mut rng = StdRng::seed_from_u64(400);
        SchnorrGroup::generate(&mut rng, 64)
    }

    #[test]
    fn proves_either_branch() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(1);
        for known in 0..2 {
            let x = g.random_exponent(&mut rng);
            let mut ys = [g.random_element(&mut rng), g.random_element(&mut rng)];
            ys[known] = g.g_exp(&x);
            let proof = OrProof::prove(&mut rng, &g, &g.g.clone(), &ys, &x, known, "or", b"");
            assert!(proof.verify(&g, &g.g, &ys, "or", b""), "branch {known}");
        }
    }

    #[test]
    fn neither_branch_rejected() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(2);
        let x = g.random_exponent(&mut rng);
        let ys = [g.g_exp(&x), g.random_element(&mut rng)];
        let proof = OrProof::prove(&mut rng, &g, &g.g.clone(), &ys, &x, 0, "or", b"");
        // Swap out both statement values: proof must not transfer.
        let ys_other = [g.random_element(&mut rng), g.random_element(&mut rng)];
        assert!(!proof.verify(&g, &g.g, &ys_other, "or", b""));
    }

    #[test]
    fn challenge_shares_checked() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(3);
        let x = g.random_exponent(&mut rng);
        let ys = [g.g_exp(&x), g.random_element(&mut rng)];
        let mut proof = OrProof::prove(&mut rng, &g, &g.g.clone(), &ys, &x, 0, "or", b"");
        proof.c[0] = (&proof.c[0] + 1u64) % &g.q;
        assert!(!proof.verify(&g, &g.g, &ys, "or", b""));
    }

    #[test]
    fn proof_hides_branch_shape() {
        // Structural check: proofs for branch 0 and branch 1 have the
        // same shape (no field is systematically zero).
        let g = group();
        let mut rng = StdRng::seed_from_u64(4);
        let x = g.random_exponent(&mut rng);
        let mut ys0 = [g.g_exp(&x), g.random_element(&mut rng)];
        let p0 = OrProof::prove(&mut rng, &g, &g.g.clone(), &ys0, &x, 0, "or", b"");
        ys0.swap(0, 1);
        let p1 = OrProof::prove(&mut rng, &g, &g.g.clone(), &ys0, &x, 1, "or", b"");
        for p in [&p0, &p1] {
            assert!(!p.c[0].is_zero() || !p.c[1].is_zero());
            assert!(!p.s[0].is_zero() && !p.s[1].is_zero());
        }
    }

    #[test]
    fn tampered_commitment_rejected() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(5);
        let x = g.random_exponent(&mut rng);
        let ys = [g.g_exp(&x), g.random_element(&mut rng)];
        let mut proof = OrProof::prove(&mut rng, &g, &g.g.clone(), &ys, &x, 0, "or", b"");
        proof.t[1] = g.random_element(&mut rng);
        assert!(!proof.verify(&g, &g.g, &ys, "or", b""));
    }
}
