//! RSA full-domain-hash signatures: `σ = H(m)^d mod n` with the hash
//! expanded over the full modulus range by MGF1.
//!
//! PPMSdec uses these for the JO's designated-receiver signature
//! (`sig = RSA_SIG_rskjo(rpksp)`, paper eq. (7)); PPMSpbs verifies the
//! recovered partially blind signature the same way.

use super::{RsaPrivateKey, RsaPublicKey};
use crate::hash::hash_to_int;
use ppms_bigint::BigUint;

/// Full-domain hash of `msg` into `[0, n)`.
pub(crate) fn fdh(pk: &RsaPublicKey, msg: &[u8]) -> BigUint {
    hash_to_int("ppms-rsa-fdh", &[msg], &pk.n)
}

/// Signs `msg` with the private key (CRT-accelerated).
pub fn sign(sk: &RsaPrivateKey, msg: &[u8]) -> BigUint {
    sk.crt().pow_secret(&fdh(&sk.public, msg))
}

/// Verifies an FDH signature.
pub fn verify(pk: &RsaPublicKey, msg: &[u8], sig: &BigUint) -> bool {
    if sig >= &pk.n {
        return false;
    }
    pk.ring().pow(sig, &pk.e) == fdh(pk, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::test_key;

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key(30);
        let sig = sign(&key, b"the data report");
        assert!(verify(&key.public, b"the data report", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let key = test_key(31);
        let sig = sign(&key, b"message A");
        assert!(!verify(&key.public, b"message B", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let key = test_key(32);
        let mut sig = sign(&key, b"msg");
        sig = &sig + 1u64;
        assert!(!verify(&key.public, b"msg", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = test_key(33);
        let k2 = test_key(34);
        let sig = sign(&k1, b"msg");
        assert!(!verify(&k2.public, b"msg", &sig));
    }

    #[test]
    fn oversized_signature_rejected() {
        let key = test_key(35);
        let sig = sign(&key, b"msg");
        let huge = &sig + &key.public.n;
        assert!(
            !verify(&key.public, b"msg", &huge),
            "sig >= n must fail fast"
        );
    }

    #[test]
    fn signing_deterministic() {
        let key = test_key(36);
        assert_eq!(sign(&key, b"m"), sign(&key, b"m"));
    }
}
