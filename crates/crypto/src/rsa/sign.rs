//! RSA full-domain-hash signatures: `σ = H(m)^d mod n` with the hash
//! expanded over the full modulus range by MGF1.
//!
//! PPMSdec uses these for the JO's designated-receiver signature
//! (`sig = RSA_SIG_rskjo(rpksp)`, paper eq. (7)); PPMSpbs verifies the
//! recovered partially blind signature the same way.

use super::{RsaPrivateKey, RsaPublicKey};
use crate::hash::hash_to_int;
use crate::zkp::batch::bisect_verify;
use ppms_bigint::BigUint;
use rand::Rng;

/// Full-domain hash of `msg` into `[0, n)`.
pub(crate) fn fdh(pk: &RsaPublicKey, msg: &[u8]) -> BigUint {
    hash_to_int("ppms-rsa-fdh", &[msg], &pk.n)
}

/// Signs `msg` with the private key (CRT-accelerated).
pub fn sign(sk: &RsaPrivateKey, msg: &[u8]) -> BigUint {
    sk.crt().pow_secret(&fdh(&sk.public, msg))
}

/// Verifies an FDH signature.
pub fn verify(pk: &RsaPublicKey, msg: &[u8], sig: &BigUint) -> bool {
    if sig >= &pk.n {
        return false;
    }
    pk.ring().pow(sig, &pk.e) == fdh(pk, msg)
}

/// Whether the combined small-exponent batch check beats `n` sequential
/// verifies, by predicted multiplication count.
///
/// A sequential verify is one `e`-exponentiation: `e_bits` squarings
/// plus `e_bits/4` window insertions plus the 14-mul table, per item.
/// The combined check pays one `e`-exponentiation on the product plus
/// two Straus multi-exponentiations over `n` bases with 64-bit
/// multipliers (≈ `14n` table muls + `15n` insertions + 64 squarings
/// each). For the protocol's `e = 65537` (17 bits) the sequential side
/// is so cheap that the combined check *never* wins — measured at
/// 0.18–0.70× in `BENCH_batch.json` before this gate existed — so the
/// deposit path routes batches to plain per-item verification. Wide
/// secret-exponent-sized `e` flips the verdict by `n = 2` already.
pub fn combined_profitable(e_bits: usize, n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let per_item = e_bits + e_bits.div_ceil(4) + 14;
    let sequential = n * per_item;
    let combined = per_item + 2 * (14 * n + 15 * n + 64);
    combined < sequential
}

/// Verifies many `(msg, sig)` pairs under one key, picking the cheaper
/// of two strategies by [`combined_profitable`]'s cost model:
/// per-item [`verify`] (always the winner for the protocol's
/// `e = 65537`), or the combined small-exponent check of
/// [`batch_verify_combined`] when `e` is wide enough to amortize.
/// Per-item verdicts are bit-identical either way.
///
/// Span: `rsa.batch_verify_ns`.
pub fn batch_verify<R: Rng + ?Sized>(
    rng: &mut R,
    pk: &RsaPublicKey,
    items: &[(&[u8], &BigUint)],
) -> Vec<bool> {
    let _span = ppms_obs::timed!("rsa.batch_verify_ns");
    if !combined_profitable(pk.e.bits(), items.len()) {
        return items
            .iter()
            .map(|(msg, sig)| verify(pk, msg, sig))
            .collect();
    }
    batch_verify_combined(rng, pk, items)
}

/// The combined small-exponent batch check, unconditionally:
///
/// ```text
///   (∏ σᵢ^{ℓᵢ})^e  ==  ∏ H(mᵢ)^{ℓᵢ}    (ℓᵢ random nonzero 64-bit)
/// ```
///
/// which costs one `e`-exponentiation plus two multi-exponentiations
/// with 64-bit exponents for the whole batch, instead of one
/// `e`-exponentiation per signature. A batch with an invalid signature
/// passes with probability ≤ 2⁻⁶⁴; on combined failure the batch is
/// bisected with sequential [`verify`] as the base case, so per-item
/// verdicts are bit-identical to the sequential path (including the
/// `σ ≥ n` fast-fail, applied up front).
///
/// Callers should normally go through [`batch_verify`], which applies
/// the cost model; this entry point exists for the ablation bench and
/// the equivalence tests.
pub fn batch_verify_combined<R: Rng + ?Sized>(
    rng: &mut R,
    pk: &RsaPublicKey,
    items: &[(&[u8], &BigUint)],
) -> Vec<bool> {
    let ring = pk.ring();
    let mut results = vec![false; items.len()];
    let mut pending = Vec::with_capacity(items.len());
    let mut hashes: Vec<Option<BigUint>> = vec![None; items.len()];
    for (i, (msg, sig)) in items.iter().enumerate() {
        if *sig >= &pk.n {
            continue; // sequential fast-fail: results[i] stays false
        }
        hashes[i] = Some(fdh(pk, msg));
        pending.push(i);
    }
    let mut combined = |rng: &mut R, subset: &[usize]| {
        // Raw 64-bit multipliers; RSA exponents are not reducible
        // (the group order is secret), so they are used as drawn.
        let ls: Vec<BigUint> = subset
            .iter()
            .map(|_| {
                let mut l = 0u64;
                while l == 0 {
                    l = rng.next_u64();
                }
                BigUint::from(l)
            })
            .collect();
        let sig_terms: Vec<(&BigUint, &BigUint)> = subset
            .iter()
            .zip(&ls)
            .map(|(&i, l)| (items[i].1, l))
            .collect();
        let hash_terms: Vec<(&BigUint, &BigUint)> = subset
            .iter()
            .zip(&ls)
            .map(|(&i, l)| (hashes[i].as_ref().unwrap(), l))
            .collect();
        let sig_prod = ring.multi_pow_n(&sig_terms);
        ring.pow(&sig_prod, &pk.e) == ring.multi_pow_n(&hash_terms)
    };
    let mut sequential = |i: usize| verify(pk, items[i].0, items[i].1);
    bisect_verify(rng, &pending, &mut results, &mut combined, &mut sequential);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::test_key;

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key(30);
        let sig = sign(&key, b"the data report");
        assert!(verify(&key.public, b"the data report", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let key = test_key(31);
        let sig = sign(&key, b"message A");
        assert!(!verify(&key.public, b"message B", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let key = test_key(32);
        let mut sig = sign(&key, b"msg");
        sig = &sig + 1u64;
        assert!(!verify(&key.public, b"msg", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = test_key(33);
        let k2 = test_key(34);
        let sig = sign(&k1, b"msg");
        assert!(!verify(&k2.public, b"msg", &sig));
    }

    #[test]
    fn oversized_signature_rejected() {
        let key = test_key(35);
        let sig = sign(&key, b"msg");
        let huge = &sig + &key.public.n;
        assert!(
            !verify(&key.public, b"msg", &huge),
            "sig >= n must fail fast"
        );
    }

    #[test]
    fn signing_deterministic() {
        let key = test_key(36);
        assert_eq!(sign(&key, b"m"), sign(&key, b"m"));
    }

    #[test]
    fn batch_verify_matches_sequential() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let key = test_key(37);
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let msgs: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 10]).collect();
        let mut sigs: Vec<BigUint> = msgs.iter().map(|m| sign(&key, m)).collect();
        let items: Vec<(&[u8], &BigUint)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert_eq!(
            batch_verify(&mut rng, &key.public, &items),
            vec![true; 6],
            "all-valid batch must pass"
        );
        assert_eq!(
            batch_verify_combined(&mut rng, &key.public, &items),
            vec![true; 6],
            "all-valid batch must pass the combined check"
        );

        // Corrupt one signature and oversize another.
        sigs[1] = (&sigs[1] + 1u64) % &key.public.n;
        sigs[4] = &key.public.n + 1u64;
        let items: Vec<(&[u8], &BigUint)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        let sequential: Vec<bool> = items
            .iter()
            .map(|(m, s)| verify(&key.public, m, s))
            .collect();
        // The dispatched entry point and the forced combined check must
        // both match per-item verification exactly.
        assert_eq!(batch_verify(&mut rng, &key.public, &items), sequential);
        let got = batch_verify_combined(&mut rng, &key.public, &items);
        assert_eq!(got, sequential);
        assert_eq!(got, vec![true, false, true, true, false, true]);
        assert!(batch_verify(&mut rng, &key.public, &[]).is_empty());
    }

    #[test]
    fn cost_model_gates_small_exponents() {
        // e = 65537 (17 bits): the combined check lost at every batch
        // size measured (0.18–0.70×) — the model must never pick it.
        for n in 0..=4096 {
            assert!(
                !combined_profitable(17, n),
                "combined must stay gated for e=65537 at n={n}"
            );
        }
        // Full-width exponents amortize immediately.
        assert!(combined_profitable(1024, 2));
        assert!(combined_profitable(2048, 2));
        // Degenerate batches never profit.
        assert!(!combined_profitable(2048, 0));
        assert!(!combined_profitable(2048, 1));
    }
}
