//! RSA partially blind signatures (Chien–Jan–Tseng style, paper ref
//! \[40\]) — the "light-weight digital coin" of PPMSpbs.
//!
//! A partially blind signature binds **common information** `info`
//! (agreed by both parties — in PPMSpbs the pre-agreed serial number
//! `s`) into a signature on a message the signer never sees (the SP's
//! one-time public key).
//!
//! Construction: the common info is folded into the public exponent,
//! `e_info = e · F(info)` with `F` an odd full-domain hash. The signer
//! derives the matching private exponent `d_info = e_info⁻¹ mod φ(n)`
//! and the rest is Chaum blinding under `e_info`:
//!
//! * requester: `α = H(m) · r^{e_info} mod n`
//! * signer:    `β = α^{d_info} mod n`
//! * requester: `σ = β · r⁻¹ mod n`, so `σ^{e_info} = H(m)`.
//!
//! Anyone can verify with only `(n, e)`, `info` and `m` — and changing
//! `info` (a different serial) invalidates the signature, which is how
//! the bank enforces serial freshness at deposit.

use super::sign::fdh;
use super::{RsaPrivateKey, RsaPublicKey};
use crate::hash::hash_to_int;
use ppms_bigint::{random_unit_range, BigUint};
use rand::Rng;

/// Derives the common-info exponent factor `F(info)`: the first
/// probable prime at or above a 128-bit hash of `info`. Primality
/// makes `gcd(F, φ(n)) = 1` overwhelmingly likely (a random *odd* F
/// would share the factor 3 with φ(n) a third of the time). The
/// derivation is deterministic, so signer and verifier agree.
fn info_exponent(info: &[u8]) -> BigUint {
    use rand::SeedableRng;
    let bound = BigUint::one() << 128usize;
    let mut f = hash_to_int("ppms-pbs-info", &[info], &bound);
    f.set_bit(0, true);
    f.set_bit(127, true); // keep the width fixed during the scan
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9B5_1F0Eu64);
    while !ppms_primes::miller_rabin::is_probable_prime_rounds(&f, 32, &mut rng) {
        f = &f + &BigUint::two();
    }
    f
}

/// Full public exponent for `info`: `e · F(info)`.
fn full_exponent(pk: &RsaPublicKey, info: &[u8]) -> BigUint {
    &pk.e * &info_exponent(info)
}

/// Requester-side blinding state.
#[derive(Debug, Clone)]
pub struct PbsBlinding {
    r: BigUint,
}

/// Errors from the signer side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbsError {
    /// `e·F(info)` shares a factor with `φ(n)` — astronomically rare;
    /// the requester should pick a fresh serial.
    BadInfo,
}

impl std::fmt::Display for PbsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "common info exponent not invertible; pick a fresh serial"
        )
    }
}

impl std::error::Error for PbsError {}

/// Blinds `msg` under common info `info`.
pub fn pbs_blind<R: Rng + ?Sized>(
    rng: &mut R,
    pk: &RsaPublicKey,
    info: &[u8],
    msg: &[u8],
) -> (BigUint, PbsBlinding) {
    let h = fdh(pk, msg);
    let e_info = full_exponent(pk, info);
    let ring = pk.ring();
    loop {
        let r = random_unit_range(rng, &pk.n);
        if r.modinv(&pk.n).is_none() {
            continue;
        }
        let alpha = ring.mul(&h, &ring.pow(&r, &e_info));
        return (alpha, PbsBlinding { r });
    }
}

/// Signer's operation: raises the blinded value to the per-info
/// private exponent. Signer sees `info` but not `msg`. The derived
/// exponent goes through the key's CRT context (reduced per prime
/// factor), the same fast path as ordinary secret-key operations.
pub fn pbs_sign(sk: &RsaPrivateKey, info: &[u8], alpha: &BigUint) -> Result<BigUint, PbsError> {
    let _span = ppms_obs::timed!("rsa.pbs_sign_ns");
    let e_info = full_exponent(&sk.public, info);
    let d_info = e_info.modinv(&sk.phi).ok_or(PbsError::BadInfo)?;
    Ok(sk.crt().pow(alpha, &d_info))
}

/// Requester-side unblinding: `σ = β · r⁻¹`.
pub fn pbs_unblind(pk: &RsaPublicKey, beta: &BigUint, blinding: &PbsBlinding) -> BigUint {
    let r_inv = blinding.r.modinv(&pk.n).expect("r chosen invertible");
    beta.modmul(&r_inv, &pk.n)
}

/// Public verification: `σ^{e·F(info)} == H(m) mod n`.
pub fn pbs_verify(pk: &RsaPublicKey, info: &[u8], msg: &[u8], sig: &BigUint) -> bool {
    let _span = ppms_obs::timed!("rsa.pbs_verify_ns");
    if sig >= &pk.n || sig.is_zero() {
        return false;
    }
    pk.ring().pow(sig, &full_exponent(pk, info)) == fdh(pk, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::test_key;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(seed: u64, info: &[u8], msg: &[u8]) -> (crate::rsa::RsaPrivateKey, BigUint) {
        let key = test_key(50 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let (alpha, blinding) = pbs_blind(&mut rng, &key.public, info, msg);
        let beta = pbs_sign(&key, info, &alpha).unwrap();
        let sig = pbs_unblind(&key.public, &beta, &blinding);
        (key, sig)
    }

    #[test]
    fn full_protocol_verifies() {
        let (key, sig) = run(1, b"serial-0001", b"sp one-time pubkey bytes");
        assert!(pbs_verify(
            &key.public,
            b"serial-0001",
            b"sp one-time pubkey bytes",
            &sig
        ));
    }

    #[test]
    fn verification_binds_info() {
        // The deposit-side freshness check hinges on this: a signature
        // under serial A must not verify under serial B.
        let (key, sig) = run(2, b"serial-A", b"msg");
        assert!(!pbs_verify(&key.public, b"serial-B", b"msg", &sig));
    }

    #[test]
    fn verification_binds_message() {
        let (key, sig) = run(3, b"serial", b"honest msg");
        assert!(!pbs_verify(&key.public, b"serial", b"forged msg", &sig));
    }

    #[test]
    fn signer_view_independent_of_message() {
        // Same message blinded twice gives different alphas.
        let key = test_key(99);
        let mut rng = StdRng::seed_from_u64(4);
        let (a1, _) = pbs_blind(&mut rng, &key.public, b"i", b"m");
        let (a2, _) = pbs_blind(&mut rng, &key.public, b"i", b"m");
        assert_ne!(a1, a2);
    }

    #[test]
    fn zero_signature_rejected() {
        let key = test_key(98);
        assert!(!pbs_verify(&key.public, b"i", b"m", &BigUint::zero()));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (key, sig) = run(5, b"serial", b"msg");
        assert!(!pbs_verify(&key.public, b"serial", b"msg", &(&sig + 1u64)));
    }
}
