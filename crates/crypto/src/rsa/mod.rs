//! RSA: key generation plus the four operations the PPMS protocols
//! need — OAEP [`encryption`](mod@encrypt), FDH [`signatures`](mod@sign),
//! Chaum [`blind signatures`](mod@blind) (DEC withdrawal), and
//! [`partially blind signatures`](mod@pbs) (the PPMSpbs digital coin).

pub mod blind;
pub mod encrypt;
pub mod pbs;
pub mod sign;

use ppms_bigint::{BigUint, ModRing, RsaCrt};
use ppms_primes::random_prime;
use rand::Rng;
use std::sync::Arc;

pub use blind::{blind, sign_blinded, unblind, BlindingFactor};
pub use encrypt::{decrypt, encrypt};
pub use pbs::{pbs_blind, pbs_sign, pbs_unblind, pbs_verify, PbsBlinding};
pub use sign::{batch_verify, batch_verify_combined, combined_profitable, sign, verify};

/// The standard public exponent.
pub const E: u64 = 65537;

/// An RSA public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus `n = p·q`.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
}

impl RsaPublicKey {
    /// Modulus length in bytes (the ciphertext/signature size).
    pub fn size_bytes(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// The process-wide cached [`ModRing`] for this modulus. Every
    /// public-key operation (verify, encrypt, blind) goes through this
    /// so the Montgomery constants for `n` are derived once per key,
    /// not once per call.
    pub fn ring(&self) -> Arc<ModRing> {
        ModRing::shared(&self.n)
    }

    /// Canonical encoding (length-prefixed `n`, then `e`), used for
    /// hashing identities and accounting message sizes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Decodes [`Self::to_bytes`]. Returns `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (n, rest) = read_lv(bytes)?;
        let (e, rest) = read_lv(rest)?;
        if !rest.is_empty() {
            return None;
        }
        Some(RsaPublicKey {
            n: BigUint::from_bytes_be(n),
            e: BigUint::from_bytes_be(e),
        })
    }
}

fn read_lv(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    if bytes.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
    if bytes.len() < 4 + len {
        return None;
    }
    Some((&bytes[4..4 + len], &bytes[4 + len..]))
}

/// An RSA private key. Retains `p`, `q` and `φ(n)` — the partially
/// blind scheme derives per-transaction private exponents from `φ(n)`.
#[derive(Debug, Clone)]
pub struct RsaPrivateKey {
    /// The matching public key.
    pub public: RsaPublicKey,
    /// Private exponent `d = e⁻¹ mod φ(n)`.
    pub d: BigUint,
    pub(crate) phi: BigUint,
    /// CRT decomposition built at keygen; all secret-key
    /// exponentiations go through it.
    crt: RsaCrt,
}

impl RsaPrivateKey {
    /// Euler's totient of the modulus (needed by [`pbs::pbs_sign`]).
    pub fn phi(&self) -> &BigUint {
        &self.phi
    }

    /// The CRT context for secret-key exponentiations.
    pub fn crt(&self) -> &RsaCrt {
        &self.crt
    }
}

/// Generates an RSA key pair with a modulus of (about) `bits` bits.
///
/// `bits >= 128`; tests in this workspace use 512, the report harness
/// 1024 — the paper's Java implementation also used short moduli for
/// its timing study.
pub fn keygen<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> RsaPrivateKey {
    assert!(bits >= 128, "modulus too small to hold OAEP padding");
    let e = BigUint::from(E);
    loop {
        let p = random_prime(rng, bits / 2);
        let q = random_prime(rng, bits.div_ceil(2));
        if p == q {
            continue;
        }
        let n = &p * &q;
        let phi = &(&p - 1u64) * &(&q - 1u64);
        let Some(d) = e.modinv(&phi) else { continue };
        let crt = RsaCrt::new(&p, &q, &d);
        return RsaPrivateKey {
            public: RsaPublicKey { n, e },
            d,
            phi,
            crt,
        };
    }
}

#[cfg(test)]
pub(crate) fn test_key(seed: u64) -> RsaPrivateKey {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    keygen(&mut rng, 512)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keygen_consistency() {
        let key = test_key(1);
        // e*d = 1 mod phi
        assert_eq!(key.public.e.modmul(&key.d, &key.phi), BigUint::one());
        // raw RSA roundtrip: (m^e)^d = m
        let m = BigUint::from(0xDEADBEEFu64);
        let c = m.modpow(&key.public.e, &key.public.n);
        assert_eq!(c.modpow(&key.d, &key.public.n), m);
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        assert_ne!(test_key(1).public.n, test_key(2).public.n);
    }

    #[test]
    fn modulus_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let key = keygen(&mut rng, 512);
        let bits = key.public.n.bits();
        assert!((511..=512).contains(&bits), "got {bits} bits");
        assert_eq!(key.public.size_bytes(), 64);
    }

    #[test]
    fn pubkey_bytes_roundtrip() {
        let key = test_key(4);
        let enc = key.public.to_bytes();
        assert_eq!(RsaPublicKey::from_bytes(&enc), Some(key.public));
        assert_eq!(RsaPublicKey::from_bytes(&enc[..enc.len() - 1]), None);
        assert_eq!(RsaPublicKey::from_bytes(&[]), None);
    }
}
