//! RSA-OAEP encryption (PKCS#1 v2.2 style, SHA-256 + MGF1).
//!
//! The PPMS protocols wrap payments and identity tokens in
//! `RSA_ENC_rpk(...)`; long payloads (a whole broken-up e-cash bundle)
//! are chunked across multiple OAEP blocks.

use super::{RsaPrivateKey, RsaPublicKey};
use crate::hash::mgf1;
use crate::sha256::Sha256;
use ppms_bigint::BigUint;
use rand::Rng;

/// OAEP hash/seed length. SHA-256 output truncated to 16 bytes so the
/// padding (`2·HLEN + 2` bytes) fits the 512-bit moduli the tests and
/// the paper-scale benchmarks use.
const HLEN: usize = 16;

/// The (truncated) label hash.
fn lhash() -> [u8; HLEN] {
    Sha256::digest(b"")[..HLEN].try_into().expect("HLEN <= 32")
}

/// Maximum plaintext bytes for a single OAEP block under `pk`.
pub fn max_block_len(pk: &RsaPublicKey) -> usize {
    pk.size_bytes() - 2 * HLEN - 2
}

/// Errors from decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecryptError {
    /// Ciphertext length is not a multiple of the modulus size.
    BadLength,
    /// OAEP padding check failed (tampered or wrong-key ciphertext).
    BadPadding,
}

impl std::fmt::Display for DecryptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecryptError::BadLength => write!(f, "ciphertext length mismatch"),
            DecryptError::BadPadding => write!(f, "OAEP padding check failed"),
        }
    }
}

impl std::error::Error for DecryptError {}

fn xor_into(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Encrypts one OAEP block (`msg.len() <= max_block_len`).
fn encrypt_block<R: Rng + ?Sized>(rng: &mut R, pk: &RsaPublicKey, msg: &[u8]) -> Vec<u8> {
    let k = pk.size_bytes();
    assert!(msg.len() <= k - 2 * HLEN - 2, "OAEP block too long");

    // DB = lHash || 0..0 || 0x01 || msg
    let mut db = Vec::with_capacity(k - HLEN - 1);
    db.extend_from_slice(&lhash()); // empty label
    db.resize(k - HLEN - 1 - msg.len() - 1, 0);
    db.push(0x01);
    db.extend_from_slice(msg);

    let mut seed = [0u8; HLEN];
    rng.fill_bytes(&mut seed);

    let db_mask = mgf1(&seed, db.len());
    xor_into(&mut db, &db_mask);
    let seed_mask = mgf1(&db, HLEN);
    let mut masked_seed = seed;
    xor_into(&mut masked_seed, &seed_mask);

    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.extend_from_slice(&masked_seed);
    em.extend_from_slice(&db);

    let m = BigUint::from_bytes_be(&em);
    debug_assert!(m < pk.n);
    pk.ring().pow(&m, &pk.e).to_bytes_be_padded(k)
}

/// Decrypts one OAEP block.
fn decrypt_block(sk: &RsaPrivateKey, block: &[u8]) -> Result<Vec<u8>, DecryptError> {
    let k = sk.public.size_bytes();
    if block.len() != k {
        return Err(DecryptError::BadLength);
    }
    let c = BigUint::from_bytes_be(block);
    let em = sk.crt().pow_secret(&c).to_bytes_be_padded(k);
    if em[0] != 0 {
        return Err(DecryptError::BadPadding);
    }
    let mut seed: [u8; HLEN] = em[1..1 + HLEN].try_into().expect("HLEN slice");
    let mut db = em[1 + HLEN..].to_vec();
    let seed_mask = mgf1(&db, HLEN);
    xor_into(&mut seed, &seed_mask);
    let db_mask = mgf1(&seed, db.len());
    xor_into(&mut db, &db_mask);

    if db[..HLEN] != lhash() {
        return Err(DecryptError::BadPadding);
    }
    // Skip the zero padding, expect the 0x01 separator.
    let rest = &db[HLEN..];
    let sep = rest
        .iter()
        .position(|&b| b != 0)
        .ok_or(DecryptError::BadPadding)?;
    if rest[sep] != 0x01 {
        return Err(DecryptError::BadPadding);
    }
    Ok(rest[sep + 1..].to_vec())
}

/// Encrypts an arbitrary-length message, chunking across OAEP blocks.
/// The output length is a multiple of the modulus size; an explicit
/// 8-byte length header keeps the chunking reversible.
pub fn encrypt<R: Rng + ?Sized>(rng: &mut R, pk: &RsaPublicKey, msg: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(8 + msg.len());
    framed.extend_from_slice(&(msg.len() as u64).to_be_bytes());
    framed.extend_from_slice(msg);
    let block_len = max_block_len(pk);
    let mut out = Vec::new();
    for chunk in framed.chunks(block_len) {
        out.extend_from_slice(&encrypt_block(rng, pk, chunk));
    }
    out
}

/// Decrypts a message produced by [`encrypt`].
pub fn decrypt(sk: &RsaPrivateKey, ct: &[u8]) -> Result<Vec<u8>, DecryptError> {
    let k = sk.public.size_bytes();
    if ct.is_empty() || !ct.len().is_multiple_of(k) {
        return Err(DecryptError::BadLength);
    }
    let mut framed = Vec::new();
    for block in ct.chunks(k) {
        framed.extend_from_slice(&decrypt_block(sk, block)?);
    }
    if framed.len() < 8 {
        return Err(DecryptError::BadPadding);
    }
    let len = u64::from_be_bytes(framed[..8].try_into().expect("8 bytes")) as usize;
    if framed.len() - 8 < len {
        return Err(DecryptError::BadPadding);
    }
    framed.truncate(8 + len);
    Ok(framed.split_off(8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::test_key;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_various_lengths() {
        let key = test_key(10);
        let mut rng = StdRng::seed_from_u64(11);
        for len in [0usize, 1, 31, 32, 33, 100, 500, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = encrypt(&mut rng, &key.public, &msg);
            assert_eq!(decrypt(&key, &ct).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn ciphertext_randomized() {
        let key = test_key(12);
        let mut rng = StdRng::seed_from_u64(13);
        let c1 = encrypt(&mut rng, &key.public, b"same message");
        let c2 = encrypt(&mut rng, &key.public, b"same message");
        assert_ne!(c1, c2, "OAEP must be probabilistic");
    }

    #[test]
    fn tampering_detected() {
        let key = test_key(14);
        let mut rng = StdRng::seed_from_u64(15);
        let mut ct = encrypt(&mut rng, &key.public, b"sensitive payment");
        ct[5] ^= 0x40;
        assert!(decrypt(&key, &ct).is_err());
    }

    #[test]
    fn wrong_key_fails() {
        let k1 = test_key(16);
        let k2 = test_key(17);
        let mut rng = StdRng::seed_from_u64(18);
        let ct = encrypt(&mut rng, &k1.public, b"for key 1 only");
        assert!(decrypt(&k2, &ct).is_err());
    }

    #[test]
    fn bad_lengths_rejected() {
        let key = test_key(19);
        assert_eq!(decrypt(&key, &[]), Err(DecryptError::BadLength));
        assert_eq!(decrypt(&key, &[0u8; 65]), Err(DecryptError::BadLength));
    }

    #[test]
    fn multiblock_boundary() {
        let key = test_key(20);
        let mut rng = StdRng::seed_from_u64(21);
        let block = max_block_len(&key.public);
        // Exactly one block of framed payload, one byte less, one more.
        for len in [block - 8, block - 7, block, 2 * block] {
            let msg = vec![0x5Au8; len];
            let ct = encrypt(&mut rng, &key.public, &msg);
            assert_eq!(decrypt(&key, &ct).unwrap(), msg, "len {len}");
        }
    }
}
