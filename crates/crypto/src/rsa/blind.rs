//! Chaum blind signatures over RSA-FDH (paper ref \[26\]).
//!
//! Used by the DEC withdrawal: the bank signs the coin root without
//! seeing it, so the issued coin is unlinkable to the account that
//! paid for it.
//!
//! Protocol: requester computes `blinded = H(m) · r^e mod n`, signer
//! returns `blinded^d`, requester divides by `r` to get `H(m)^d` — a
//! plain FDH signature verifiable with [`super::verify`].

use super::sign::fdh;
use super::{RsaPrivateKey, RsaPublicKey};
use ppms_bigint::{random_unit_range, BigUint};
use rand::Rng;

/// The requester's secret blinding factor; needed once to unblind.
#[derive(Debug, Clone)]
pub struct BlindingFactor {
    r: BigUint,
}

/// Blinds `msg` for signing. Returns the value to send to the signer
/// and the factor to keep.
pub fn blind<R: Rng + ?Sized>(
    rng: &mut R,
    pk: &RsaPublicKey,
    msg: &[u8],
) -> (BigUint, BlindingFactor) {
    let h = fdh(pk, msg);
    let ring = pk.ring();
    loop {
        let r = random_unit_range(rng, &pk.n);
        // r must be invertible mod n (overwhelmingly likely).
        if r.modinv(&pk.n).is_none() {
            continue;
        }
        let blinded = ring.mul(&h, &ring.pow(&r, &pk.e));
        return (blinded, BlindingFactor { r });
    }
}

/// Signer's operation on a blinded value. The signer learns nothing
/// about the underlying message.
pub fn sign_blinded(sk: &RsaPrivateKey, blinded: &BigUint) -> BigUint {
    let _span = ppms_obs::timed!("rsa.blind_sign_ns");
    sk.crt().pow_secret(blinded)
}

/// Removes the blinding, yielding a standard FDH signature on `msg`.
pub fn unblind(pk: &RsaPublicKey, blinded_sig: &BigUint, factor: &BlindingFactor) -> BigUint {
    let r_inv = factor.r.modinv(&pk.n).expect("r chosen invertible");
    blinded_sig.modmul(&r_inv, &pk.n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::{sign, test_key, verify};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blind_sign_unblind_verifies() {
        let key = test_key(40);
        let mut rng = StdRng::seed_from_u64(41);
        let (blinded, factor) = blind(&mut rng, &key.public, b"coin root token");
        let bs = sign_blinded(&key, &blinded);
        let sig = unblind(&key.public, &bs, &factor);
        assert!(verify(&key.public, b"coin root token", &sig));
    }

    #[test]
    fn unblinded_equals_direct_signature() {
        // The unblinded signature is exactly the deterministic FDH
        // signature — the signer could not have embedded a tracer.
        let key = test_key(42);
        let mut rng = StdRng::seed_from_u64(43);
        let (blinded, factor) = blind(&mut rng, &key.public, b"msg");
        let sig = unblind(&key.public, &sign_blinded(&key, &blinded), &factor);
        assert_eq!(sig, sign(&key, b"msg"));
    }

    #[test]
    fn blinded_value_hides_message() {
        // Two different messages blind (with the right factors) to any
        // value; sanity-check that equal messages give different
        // blinded values under fresh randomness.
        let key = test_key(44);
        let mut rng = StdRng::seed_from_u64(45);
        let (b1, _) = blind(&mut rng, &key.public, b"same");
        let (b2, _) = blind(&mut rng, &key.public, b"same");
        assert_ne!(b1, b2);
    }

    #[test]
    fn wrong_factor_fails() {
        let key = test_key(46);
        let mut rng = StdRng::seed_from_u64(47);
        let (blinded, _) = blind(&mut rng, &key.public, b"msg");
        let (_, wrong_factor) = blind(&mut rng, &key.public, b"msg");
        let sig = unblind(&key.public, &sign_blinded(&key, &blinded), &wrong_factor);
        assert!(!verify(&key.public, b"msg", &sig));
    }
}
