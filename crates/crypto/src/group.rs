//! Prime-order subgroups of `Z_p*` (Schnorr groups).
//!
//! The DEC group tower, Pedersen commitments and every zero-knowledge
//! proof in the workspace operate in these groups. For the tower the
//! moduli are safe primes from a Cunningham chain (`p = 2q + 1`), so
//! the subgroup of quadratic residues has prime order `q`.
//!
//! All group arithmetic goes through the cached [`ModRing`], which
//! routes protocol-width moduli (1024/2048-bit, and the small
//! fixture-tower widths) onto the allocation-free fixed-width
//! `FpMont` kernels — every `exp` / `multi_exp` below runs its ladder
//! without touching the heap (DESIGN.md §12).

use crate::hash::hash_to_int;
use ppms_bigint::{jacobi, random_below, BigUint, ModRing};
use ppms_primes::gen::random_safe_prime;
use rand::Rng;

/// A cyclic group of prime order `q` inside `Z_p*`, with a canonical
/// generator `g`.
#[derive(Debug, Clone)]
pub struct SchnorrGroup {
    /// Prime modulus.
    pub p: BigUint,
    /// Prime order of the subgroup (`q | p - 1`).
    pub q: BigUint,
    /// Canonical generator.
    pub g: BigUint,
    /// Cached ring for `p`. Clones share the fixed-base window cache,
    /// so every generator registered here accelerates all holders of
    /// this group (including worker-thread clones).
    ring: ModRing,
    /// `p = 2q + 1`: the subgroup is exactly the quadratic residues,
    /// so membership reduces to a Jacobi symbol instead of a `q`-width
    /// exponentiation.
    safe_prime: bool,
}

impl PartialEq for SchnorrGroup {
    fn eq(&self, other: &Self) -> bool {
        // The ring is derived state; (p, q, g) identify the group.
        self.p == other.p && self.q == other.q && self.g == other.g
    }
}

impl Eq for SchnorrGroup {}

impl SchnorrGroup {
    /// Builds the quadratic-residue subgroup of a safe prime
    /// `p = 2q + 1`. The canonical generator is derived by
    /// hash-to-group so its discrete log is unknown to everyone.
    pub fn from_safe_prime(p: &BigUint, q: &BigUint) -> SchnorrGroup {
        debug_assert_eq!(p, &(&(q << 1usize) + &BigUint::one()), "p = 2q+1 required");
        let ring = ModRing::new(p);
        let safe_prime = p == &(&(q << 1usize) + &BigUint::one());
        let mut group = SchnorrGroup {
            p: p.clone(),
            q: q.clone(),
            g: BigUint::zero(),
            ring,
            safe_prime,
        };
        group.g = group.derive_generator("canonical-g");
        group
    }

    /// Generates a fresh group with a random safe prime of
    /// `q_bits + 1` modulus bits.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, q_bits: usize) -> SchnorrGroup {
        let (p, q) = random_safe_prime(rng, q_bits + 1);
        SchnorrGroup::from_safe_prime(&p, &q)
    }

    /// Derives an independent generator from a domain-separation tag
    /// (nothing-up-my-sleeve: `H(tag, p)` cofactor-raised into the
    /// subgroup; nobody knows its discrete log w.r.t. `g`).
    ///
    /// The returned generator is registered as a fixed base, so later
    /// exponentiations of it use the cached window tables.
    pub fn derive_generator(&self, tag: &str) -> BigUint {
        let cofactor = &(&self.p - 1u64) / &self.q;
        let mut ctr = 0u64;
        loop {
            let seed = hash_to_int(
                "ppms-group-gen",
                &[tag.as_bytes(), &self.p.to_bytes_be(), &ctr.to_be_bytes()],
                &self.p,
            );
            let candidate = self.ring.pow(&seed, &cofactor);
            if !candidate.is_one() && !candidate.is_zero() {
                self.ring.register_base(&candidate);
                return candidate;
            }
            ctr += 1;
        }
    }

    /// The underlying cached ring for `Z_p*` (shared across clones).
    pub fn ring(&self) -> &ModRing {
        &self.ring
    }

    /// `base^e mod p` (exponent reduced mod `q` by group order).
    /// Registered fixed bases (the generators) take the window-table
    /// path; arbitrary bases fall back to windowed square-and-multiply.
    pub fn exp(&self, base: &BigUint, e: &BigUint) -> BigUint {
        self.ring.pow_fixed(base, &(e % &self.q))
    }

    /// `g^e mod p`.
    pub fn g_exp(&self, e: &BigUint) -> BigUint {
        self.exp(&self.g, e)
    }

    /// Product in `Z_p*`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.ring.mul(a, b)
    }

    /// Multiplicative inverse in `Z_p*`.
    pub fn inv(&self, a: &BigUint) -> BigUint {
        a.modinv(&self.p).expect("nonzero element of Z_p*")
    }

    /// Membership test: `x` is in the order-`q` subgroup.
    ///
    /// For safe primes (`p = 2q+1`, every group in the protocols) the
    /// subgroup is exactly the quadratic residues, so `x^q == 1 ⟺
    /// jacobi(x, p) == 1` and the test costs a gcd-like symbol walk
    /// instead of a `q`-width exponentiation. Decisions are identical
    /// either way; the slow path remains for non-safe parameters.
    pub fn contains(&self, x: &BigUint) -> bool {
        if x.is_zero() || x >= &self.p {
            return false;
        }
        if self.safe_prime {
            jacobi(x, &self.p) == 1
        } else {
            self.ring.pow(x, &self.q).is_one()
        }
    }

    /// Simultaneous double exponentiation `a^x · b^y mod p` via
    /// Shamir's trick (one shared square per bit instead of two) — the
    /// hot operation of every sigma-protocol verification
    /// (`g^s == t · y^c`). Delegates to [`ModRing::multi_pow`], which
    /// runs the whole pass in the Montgomery domain.
    pub fn multi_exp2(&self, a: &BigUint, x: &BigUint, b: &BigUint, y: &BigUint) -> BigUint {
        let x = x % &self.q;
        let y = y % &self.q;
        self.ring.multi_pow(&[(a, &x), (b, &y)])
    }

    /// Simultaneous multi-exponentiation `Π basesᵢ^{eᵢ} mod p`
    /// (exponents reduced mod `q`). Chunks the bases so the ring's
    /// subset-product table stays small regardless of arity.
    pub fn multi_exp(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        const CHUNK: usize = 4;
        let reduced: Vec<BigUint> = pairs.iter().map(|(_, e)| *e % &self.q).collect();
        let mut acc = BigUint::one();
        for (chunk, exps) in pairs.chunks(CHUNK).zip(reduced.chunks(CHUNK)) {
            let refs: Vec<(&BigUint, &BigUint)> =
                chunk.iter().map(|(b, _)| *b).zip(exps.iter()).collect();
            let part = self.ring.multi_pow(&refs);
            acc = if acc.is_one() {
                part
            } else {
                self.ring.mul(&acc, &part)
            };
        }
        acc
    }

    /// Unbounded simultaneous multi-exponentiation
    /// `Π basesᵢ^{eᵢ} mod p` (exponents reduced mod `q`) through
    /// [`ModRing::multi_pow_n`] — Straus below the Pippenger crossover,
    /// bucketed above, one shared squaring chain either way. This is
    /// the combined-check evaluator of batch verification.
    pub fn multi_exp_n(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        let reduced: Vec<BigUint> = pairs.iter().map(|(_, e)| *e % &self.q).collect();
        let refs: Vec<(&BigUint, &BigUint)> =
            pairs.iter().map(|(b, _)| *b).zip(reduced.iter()).collect();
        self.ring.multi_pow_n(&refs)
    }

    /// Uniform exponent in `[0, q)`.
    pub fn random_exponent<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        random_below(rng, &self.q)
    }

    /// Uniform group element (a random power of `g`).
    pub fn random_element<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        self.g_exp(&self.random_exponent(rng))
    }

    /// Serialized length of one group element in bytes.
    pub fn element_bytes(&self) -> usize {
        self.p.bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 2q+1 = 23, q = 11 — the classic toy safe prime.
    fn toy() -> SchnorrGroup {
        SchnorrGroup::from_safe_prime(&BigUint::from(23u64), &BigUint::from(11u64))
    }

    #[test]
    fn generator_has_order_q() {
        let g = toy();
        assert!(g.contains(&g.g));
        assert!(!g.g.is_one());
        assert_eq!(g.exp(&g.g, &g.q), BigUint::one());
    }

    #[test]
    fn exponent_wraps_mod_q() {
        let g = toy();
        let e = BigUint::from(5u64);
        let e_wrapped = &e + &g.q;
        assert_eq!(g.g_exp(&e), g.g_exp(&e_wrapped));
    }

    #[test]
    fn derived_generators_independent() {
        // Needs a group big enough that hash-derived generators do not
        // collide by pigeonhole (the toy 11-element group can collide).
        let mut rng = StdRng::seed_from_u64(77);
        let g = SchnorrGroup::generate(&mut rng, 48);
        let h1 = g.derive_generator("h1");
        let h2 = g.derive_generator("h2");
        assert!(g.contains(&h1));
        assert!(g.contains(&h2));
        assert_ne!(h1, h2);
        // Deterministic per tag.
        assert_eq!(h1, g.derive_generator("h1"));
    }

    #[test]
    fn membership_rejects_non_residues() {
        let g = toy();
        // 5 is a non-residue mod 23 (5^11 = -1 mod 23).
        assert!(!g.contains(&BigUint::from(5u64)));
        assert!(!g.contains(&BigUint::zero()));
        assert!(!g.contains(&g.p.clone()));
        assert!(g.contains(&BigUint::one()));
    }

    #[test]
    fn mul_inv_roundtrip() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.random_element(&mut rng);
        assert_eq!(g.mul(&x, &g.inv(&x)), BigUint::one());
    }

    #[test]
    fn generate_fresh_group() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = SchnorrGroup::generate(&mut rng, 32);
        assert_eq!(g.q.bits(), 32);
        assert!(g.contains(&g.g));
        assert!(ppms_primes::is_probable_prime(&g.p));
        assert!(ppms_primes::is_probable_prime(&g.q));
    }

    #[test]
    fn random_element_in_group() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert!(g.contains(&g.random_element(&mut rng)));
        }
    }

    #[test]
    fn multi_exp2_matches_separate_exps() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = SchnorrGroup::generate(&mut rng, 48);
        let b = g.derive_generator("other");
        for _ in 0..10 {
            let x = g.random_exponent(&mut rng);
            let y = g.random_exponent(&mut rng);
            let expected = g.mul(&g.g_exp(&x), &g.exp(&b, &y));
            assert_eq!(g.multi_exp2(&g.g, &x, &b, &y), expected);
        }
    }

    #[test]
    fn contains_jacobi_matches_subgroup_pow() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = SchnorrGroup::generate(&mut rng, 48);
        // Every value below p must get the same decision from the
        // Jacobi fast path and the x^q == 1 reference.
        for _ in 0..50 {
            let x = random_below(&mut rng, &g.p);
            let reference = !x.is_zero() && g.ring.pow(&x, &g.q).is_one();
            assert_eq!(g.contains(&x), reference, "x = {}", x.to_dec());
        }
        assert!(!g.contains(&(&g.p - 1u64))); // -1 is a non-residue mod a safe prime
    }

    #[test]
    fn multi_exp_n_matches_product() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = SchnorrGroup::generate(&mut rng, 48);
        for count in [0usize, 1, 5, 40] {
            let pairs: Vec<(BigUint, BigUint)> = (0..count)
                .map(|_| (g.random_element(&mut rng), g.random_exponent(&mut rng)))
                .collect();
            let refs: Vec<(&BigUint, &BigUint)> = pairs.iter().map(|(b, e)| (b, e)).collect();
            let expect = refs
                .iter()
                .fold(BigUint::one(), |acc, (b, e)| g.mul(&acc, &g.exp(b, e)));
            assert_eq!(g.multi_exp_n(&refs), expect, "count {count}");
        }
    }

    #[test]
    fn multi_exp2_edge_exponents() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = SchnorrGroup::generate(&mut rng, 48);
        let b = g.derive_generator("other");
        let zero = BigUint::zero();
        let one = BigUint::one();
        assert_eq!(g.multi_exp2(&g.g, &zero, &b, &zero), BigUint::one());
        assert_eq!(g.multi_exp2(&g.g, &one, &b, &zero), g.g);
        assert_eq!(g.multi_exp2(&g.g, &zero, &b, &one), b);
        // Exponents reduce mod q.
        let big = &g.q + &BigUint::from(5u64);
        assert_eq!(
            g.multi_exp2(&g.g, &big, &b, &one),
            g.mul(&g.g_exp(&BigUint::from(5u64)), &b)
        );
    }
}
