//! # ppms-crypto
//!
//! The cryptographic substrate of the PPMS reproduction, implemented
//! from scratch on top of [`ppms_bigint`]:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (the workspace's only hash),
//! * [`hash`] — domain-separated hashing into integers/groups, MGF1,
//! * [`rsa`] — key generation, OAEP-style encryption, FDH signatures,
//!   Chaum blind signatures and the RSA **partially blind signature**
//!   used by PPMSpbs (paper ref \[40\]),
//! * [`group`] — prime-order subgroups of `Z_p*` (Schnorr groups),
//! * [`tower`] — the DEC group tower `G_1 … G_{L+1}` whose orders form
//!   a Cunningham chain (paper §III-C1),
//! * [`pedersen`] — Pedersen commitments,
//! * [`zkp`] — Fiat–Shamir NIZKs: Schnorr discrete log, Okamoto
//!   representation, Stadler double discrete log, CDS OR-composition
//!   and Chaum–Pedersen equality (paper §VI-C, refs \[34\]–\[39\]),
//! * [`pairing`] — a Type-A symmetric pairing (supersingular
//!   `y² = x³ + x` over `F_p`, Tate pairing via Miller's algorithm) —
//!   the same family the paper's jPBC dependency provides,
//! * [`cl`] — Camenisch–Lysyanskaya signatures over that pairing
//!   (paper ref \[27\]).

pub mod cl;
pub mod group;
pub mod hash;
pub mod pairing;
pub mod pedersen;
pub mod rsa;
pub mod sha256;
pub mod tower;
pub mod zkp;

pub use cl::{ClKeyPair, ClPublicKey, ClSignature};
pub use group::SchnorrGroup;
pub use pedersen::{PedersenCommitment, PedersenParams};
pub use sha256::Sha256;
pub use tower::GroupTower;
