//! Hashing utilities over SHA-256: domain separation, hash-to-integer,
//! and MGF1 (the mask generation function used by OAEP and FDH).

use crate::sha256::Sha256;
use ppms_bigint::BigUint;

/// Hashes `data` under a domain-separation `tag` to 32 bytes.
pub fn hash_tagged(tag: &str, data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&(tag.len() as u64).to_be_bytes());
    h.update(tag.as_bytes());
    h.update(data);
    h.finalize()
}

/// Hashes a sequence of length-prefixed byte strings under a tag.
/// The length prefixes make the encoding injective.
pub fn hash_parts(tag: &str, parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&(tag.len() as u64).to_be_bytes());
    h.update(tag.as_bytes());
    for p in parts {
        h.update(&(p.len() as u64).to_be_bytes());
        h.update(p);
    }
    h.finalize()
}

/// MGF1 with SHA-256: expands `seed` to `len` bytes.
pub fn mgf1(seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let mut h = Sha256::new();
        h.update(seed);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(len);
    out
}

/// Hashes parts to a uniformly-distributed integer in `[0, bound)` by
/// expanding with MGF1 to `bound.bits() + 64` bits and reducing — the
/// 64 extra bits make the modular bias negligible.
pub fn hash_to_int(tag: &str, parts: &[&[u8]], bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero());
    let seed = hash_parts(tag, parts);
    let nbytes = (bound.bits() + 64).div_ceil(8);
    let wide = BigUint::from_bytes_be(&mgf1(&seed, nbytes));
    &wide % bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_separate_domains() {
        assert_ne!(hash_tagged("a", b"msg"), hash_tagged("b", b"msg"));
        assert_ne!(hash_tagged("a", b"msg1"), hash_tagged("a", b"msg2"));
    }

    #[test]
    fn parts_encoding_injective() {
        // ["ab", "c"] must differ from ["a", "bc"] — length prefixes.
        assert_ne!(
            hash_parts("t", &[b"ab", b"c"]),
            hash_parts("t", &[b"a", b"bc"])
        );
        assert_ne!(hash_parts("t", &[b"ab"]), hash_parts("t", &[b"ab", b""]));
    }

    #[test]
    fn mgf1_deterministic_prefix_free() {
        let a = mgf1(b"seed", 100);
        let b = mgf1(b"seed", 40);
        assert_eq!(&a[..40], &b[..]);
        assert_eq!(a.len(), 100);
        assert_ne!(mgf1(b"seed1", 32), mgf1(b"seed2", 32));
    }

    #[test]
    fn hash_to_int_in_range() {
        let bound = BigUint::from(1_000_003u64);
        for i in 0..50u32 {
            let v = hash_to_int("test", &[&i.to_be_bytes()], &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn hash_to_int_spreads() {
        // Over a tiny bound, all residues should be hit quickly.
        let bound = BigUint::from(7u64);
        let mut seen = [false; 7];
        for i in 0..100u32 {
            let v = hash_to_int("spread", &[&i.to_be_bytes()], &bound);
            seen[v.to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
