//! A Type-A symmetric pairing, built from scratch.
//!
//! The paper's implementation used jPBC's Type A parameters (refs
//! \[31\]–\[33\]): the supersingular curve `E: y² = x³ + x` over `F_p`
//! with `p ≡ 3 (mod 4)`, which has `#E(F_p) = p + 1` and embedding
//! degree 2. For a prime `r | p + 1`, the `r`-torsion subgroup
//! `G ⊂ E(F_p)` admits a **symmetric** bilinear pairing
//! `ê: G × G → μ_r ⊂ F_p²` via the Tate pairing composed with the
//! distortion map `φ(x, y) = (−x, i·y)` (where `i² = −1` in
//! `F_p² = F_p[i]`).
//!
//! Modules:
//! * [`fp`] — arithmetic in `F_p`,
//! * [`fp2`] — arithmetic in `F_p²`,
//! * [`curve`] — points of `E(F_p)` and scalar multiplication,
//! * [`miller`] — Miller's algorithm + final exponentiation,
//! * [`typea`] — parameter generation and the [`typea::TypeAPairing`]
//!   front-end used by the CL signature.

pub mod curve;
pub mod fp;
pub mod fp2;
pub mod miller;
pub mod typea;

pub use curve::Point;
pub use fp::Fp;
pub use fp2::Fp2;
pub use typea::TypeAPairing;
