//! The prime field `F_p` as a context object (elements are plain
//! [`BigUint`]s reduced mod `p`; the context carries a cached
//! [`ModRing`] for fast multiplication and exponentiation).

use ppms_bigint::{BigUint, ModRing};

/// Field context for `F_p` (`p` an odd prime).
#[derive(Debug, Clone)]
pub struct Fp {
    /// The prime modulus.
    pub p: BigUint,
    ring: ModRing,
}

impl Fp {
    /// Creates the field context. `p` must be an odd prime (unchecked
    /// beyond oddness).
    pub fn new(p: &BigUint) -> Fp {
        Fp {
            p: p.clone(),
            ring: ModRing::new(p),
        }
    }

    /// The cached ring for `p` (fixed-base registration for pairing
    /// bases lives here).
    pub fn ring(&self) -> &ModRing {
        &self.ring
    }

    /// Canonical representative of `x`.
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        x % &self.p
    }

    /// `a + b`.
    pub fn add(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let s = a + b;
        if s >= self.p {
            &s - &self.p
        } else {
            s
        }
    }

    /// `a - b`.
    pub fn sub(&self, a: &BigUint, b: &BigUint) -> BigUint {
        if a >= b {
            a - b
        } else {
            &(a + &self.p) - b
        }
    }

    /// `-a`.
    pub fn neg(&self, a: &BigUint) -> BigUint {
        if a.is_zero() {
            BigUint::zero()
        } else {
            &self.p - a
        }
    }

    /// `a · b`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.ring.mul(a, b)
    }

    /// `a²`.
    pub fn square(&self, a: &BigUint) -> BigUint {
        self.ring.mul(a, a)
    }

    /// `a^e` (fixed-base accelerated for registered bases).
    pub fn pow(&self, a: &BigUint, e: &BigUint) -> BigUint {
        self.ring.pow_fixed(a, e)
    }

    /// `a⁻¹`; panics on zero.
    pub fn inv(&self, a: &BigUint) -> BigUint {
        a.modinv(&self.p).expect("inverse of zero in Fp")
    }

    /// Square root for `p ≡ 3 (mod 4)`: `a^((p+1)/4)`, or `None` if
    /// `a` is a non-residue.
    pub fn sqrt(&self, a: &BigUint) -> Option<BigUint> {
        debug_assert_eq!(&self.p % 4u64, 3);
        if a.is_zero() {
            return Some(BigUint::zero());
        }
        let e = &(&self.p + 1u64) >> 2usize;
        let r = self.pow(a, &e);
        if self.square(&r) == self.reduce(a) {
            Some(r)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Fp {
        Fp::new(&BigUint::from(1_000_003u64)) // prime ≡ 3 mod 4
    }

    #[test]
    fn ring_ops() {
        let f = f();
        let a = BigUint::from(999_999u64);
        let b = BigUint::from(10u64);
        assert_eq!(f.add(&a, &b), BigUint::from(6u64));
        assert_eq!(f.sub(&b, &a), BigUint::from(1_000_003u64 - 999_989));
        assert_eq!(f.neg(&BigUint::zero()), BigUint::zero());
        assert_eq!(f.add(&a, &f.neg(&a)), BigUint::zero());
    }

    #[test]
    fn mul_inv() {
        let f = f();
        let a = BigUint::from(12345u64);
        assert_eq!(f.mul(&a, &f.inv(&a)), BigUint::one());
    }

    #[test]
    fn sqrt_roundtrip() {
        let f = f();
        assert_eq!(&f.p % 4u64, 3);
        let a = BigUint::from(54321u64);
        let sq = f.square(&a);
        let r = f.sqrt(&sq).expect("square has a root");
        assert!(r == a || r == f.neg(&a));
    }

    #[test]
    fn sqrt_nonresidue_none() {
        let f = f();
        // Find a non-residue: -1 is one since p ≡ 3 mod 4.
        let nr = f.neg(&BigUint::one());
        assert!(f.sqrt(&nr).is_none());
    }

    #[test]
    fn pow_fermat() {
        let f = f();
        let a = BigUint::from(777u64);
        assert_eq!(f.pow(&a, &(&f.p - 1u64)), BigUint::one());
    }
}
