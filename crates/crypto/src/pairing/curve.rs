//! The supersingular curve `E: y² = x³ + x` over `F_p` and its group
//! law. With `p ≡ 3 (mod 4)` this curve has exactly `p + 1` points.

use super::fp::Fp;
use ppms_bigint::{random_below, BigUint};
use rand::Rng;

/// A point of `E(F_p)` in affine coordinates; `Infinity` is the
/// neutral element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Point {
    /// The point at infinity.
    Infinity,
    /// An affine point.
    Affine {
        /// x-coordinate.
        x: BigUint,
        /// y-coordinate.
        y: BigUint,
    },
}

impl Point {
    /// `true` iff the neutral element.
    pub fn is_infinity(&self) -> bool {
        matches!(self, Point::Infinity)
    }

    /// Canonical encoding (empty for infinity).
    pub fn to_bytes(&self, f: &Fp) -> Vec<u8> {
        match self {
            Point::Infinity => vec![0],
            Point::Affine { x, y } => {
                let w = f.p.bits().div_ceil(8);
                let mut out = vec![1];
                out.extend_from_slice(&x.to_bytes_be_padded(w));
                out.extend_from_slice(&y.to_bytes_be_padded(w));
                out
            }
        }
    }
}

/// Curve context: the base field (the curve constant is fixed, `a=1`,
/// `b=0`).
#[derive(Debug, Clone)]
pub struct Curve {
    /// Base field.
    pub fp: Fp,
}

impl Curve {
    /// Wraps the field context. Requires `p ≡ 3 (mod 4)` so the curve
    /// is supersingular with `p + 1` points.
    pub fn new(fp: Fp) -> Curve {
        assert_eq!(&fp.p % 4u64, 3, "Type A needs p ≡ 3 (mod 4)");
        Curve { fp }
    }

    /// `true` iff `(x, y)` satisfies `y² = x³ + x`.
    pub fn is_on_curve(&self, pt: &Point) -> bool {
        match pt {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                let lhs = self.fp.square(y);
                let rhs = self.fp.add(&self.fp.mul(&self.fp.square(x), x), x);
                lhs == rhs
            }
        }
    }

    /// Point negation.
    pub fn neg(&self, pt: &Point) -> Point {
        match pt {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => Point::Affine {
                x: x.clone(),
                y: self.fp.neg(y),
            },
        }
    }

    /// Group law.
    pub fn add(&self, p: &Point, q: &Point) -> Point {
        match (p, q) {
            (Point::Infinity, _) => q.clone(),
            (_, Point::Infinity) => p.clone(),
            (Point::Affine { x: x1, y: y1 }, Point::Affine { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        if y1.is_zero() {
                            return Point::Infinity; // order-2 point doubled
                        }
                        // Doubling: λ = (3x² + 1) / 2y
                        let x1sq = self.fp.square(x1);
                        let num = self.fp.add(
                            &self.fp.add(&x1sq, &self.fp.add(&x1sq, &x1sq)),
                            &BigUint::one(),
                        );
                        let den = self.fp.add(y1, y1);
                        let lam = self.fp.mul(&num, &self.fp.inv(&den));
                        self.chord(x1, y1, x2, &lam)
                    } else {
                        Point::Infinity // P + (−P)
                    }
                } else {
                    // Chord: λ = (y2 − y1) / (x2 − x1)
                    let num = self.fp.sub(y2, y1);
                    let den = self.fp.sub(x2, x1);
                    let lam = self.fp.mul(&num, &self.fp.inv(&den));
                    self.chord(x1, y1, x2, &lam)
                }
            }
        }
    }

    fn chord(&self, x1: &BigUint, y1: &BigUint, x2: &BigUint, lam: &BigUint) -> Point {
        let x3 = self.fp.sub(&self.fp.sub(&self.fp.square(lam), x1), x2);
        let y3 = self.fp.sub(&self.fp.mul(lam, &self.fp.sub(x1, &x3)), y1);
        Point::Affine { x: x3, y: y3 }
    }

    /// Scalar multiplication (double-and-add).
    pub fn mul(&self, k: &BigUint, p: &Point) -> Point {
        let mut acc = Point::Infinity;
        for i in (0..k.bits()).rev() {
            acc = self.add(&acc, &acc);
            if k.bit(i) {
                acc = self.add(&acc, p);
            }
        }
        acc
    }

    /// Samples a uniformly random curve point (excluding infinity).
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        loop {
            let x = random_below(rng, &self.fp.p);
            let rhs = self.fp.add(&self.fp.mul(&self.fp.square(&x), &x), &x);
            if let Some(y) = self.fp.sqrt(&rhs) {
                // Randomize the sign of y for uniformity.
                let y = if rng.next_u32() & 1 == 0 {
                    y
                } else {
                    self.fp.neg(&y)
                };
                let pt = Point::Affine { x, y };
                if !pt.is_infinity() {
                    return pt;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// p = 1019 ≡ 3 mod 4 is prime; E(F_1019) has 1020 points.
    fn curve() -> Curve {
        Curve::new(Fp::new(&BigUint::from(1019u64)))
    }

    #[test]
    fn random_points_on_curve() {
        let c = curve();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert!(c.is_on_curve(&c.random_point(&mut rng)));
        }
    }

    #[test]
    fn group_axioms() {
        let c = curve();
        let mut rng = StdRng::seed_from_u64(2);
        let p = c.random_point(&mut rng);
        let q = c.random_point(&mut rng);
        let r = c.random_point(&mut rng);
        // Identity, inverse, commutativity, associativity.
        assert_eq!(c.add(&p, &Point::Infinity), p);
        assert_eq!(c.add(&p, &c.neg(&p)), Point::Infinity);
        assert_eq!(c.add(&p, &q), c.add(&q, &p));
        assert_eq!(c.add(&c.add(&p, &q), &r), c.add(&p, &c.add(&q, &r)));
    }

    #[test]
    fn curve_order_is_p_plus_one() {
        let c = curve();
        let mut rng = StdRng::seed_from_u64(3);
        let order = &c.fp.p + 1u64;
        for _ in 0..5 {
            let p = c.random_point(&mut rng);
            assert_eq!(c.mul(&order, &p), Point::Infinity);
        }
    }

    #[test]
    fn scalar_mul_consistency() {
        let c = curve();
        let mut rng = StdRng::seed_from_u64(4);
        let p = c.random_point(&mut rng);
        // 5P = P + P + P + P + P
        let five = c.mul(&BigUint::from(5u64), &p);
        let mut acc = Point::Infinity;
        for _ in 0..5 {
            acc = c.add(&acc, &p);
        }
        assert_eq!(five, acc);
        assert_eq!(c.mul(&BigUint::zero(), &p), Point::Infinity);
        assert_eq!(c.mul(&BigUint::one(), &p), p);
    }

    #[test]
    fn order_two_point_handled() {
        // (0, 0) is on y² = x³ + x and has order 2; doubling it must
        // give the point at infinity, not a division-by-zero panic.
        let c = curve();
        let two_torsion = Point::Affine {
            x: BigUint::zero(),
            y: BigUint::zero(),
        };
        assert!(c.is_on_curve(&two_torsion));
        assert_eq!(c.add(&two_torsion, &two_torsion), Point::Infinity);
        assert_eq!(c.neg(&two_torsion), two_torsion);
        assert_eq!(c.mul(&BigUint::from(2u64), &two_torsion), Point::Infinity);
        assert_eq!(c.mul(&BigUint::from(3u64), &two_torsion), two_torsion);
    }

    #[test]
    fn mul_large_scalar_wraps() {
        let c = curve();
        let mut rng = StdRng::seed_from_u64(6);
        let p = c.random_point(&mut rng);
        let order = &c.fp.p + 1u64;
        // (order + 3)·P = 3·P
        let k = &order + 3u64;
        assert_eq!(c.mul(&k, &p), c.mul(&BigUint::from(3u64), &p));
    }

    #[test]
    fn results_stay_on_curve() {
        let c = curve();
        let mut rng = StdRng::seed_from_u64(5);
        let p = c.random_point(&mut rng);
        let q = c.random_point(&mut rng);
        assert!(c.is_on_curve(&c.add(&p, &q)));
        assert!(c.is_on_curve(&c.mul(&BigUint::from(123u64), &p)));
        assert!(c.is_on_curve(&c.neg(&p)));
    }
}
