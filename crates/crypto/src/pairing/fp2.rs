//! The quadratic extension `F_p² = F_p[i]/(i² + 1)` (valid because
//! `p ≡ 3 (mod 4)` makes `-1` a non-residue). Pairing values live here.

use super::fp::Fp;
use ppms_bigint::BigUint;

/// An element `a + b·i` of `F_p²`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fp2 {
    /// Real part.
    pub a: BigUint,
    /// Imaginary part.
    pub b: BigUint,
}

impl Fp2 {
    /// The element `1`.
    pub fn one() -> Fp2 {
        Fp2 {
            a: BigUint::one(),
            b: BigUint::zero(),
        }
    }

    /// The element `0`.
    pub fn zero() -> Fp2 {
        Fp2 {
            a: BigUint::zero(),
            b: BigUint::zero(),
        }
    }

    /// Embeds an `F_p` element.
    pub fn from_fp(a: BigUint) -> Fp2 {
        Fp2 {
            a,
            b: BigUint::zero(),
        }
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.a.is_zero() && self.b.is_zero()
    }

    /// `true` iff one.
    pub fn is_one(&self) -> bool {
        self.a.is_one() && self.b.is_zero()
    }

    /// Canonical byte encoding (fixed width per field).
    pub fn to_bytes(&self, f: &Fp) -> Vec<u8> {
        let w = f.p.bits().div_ceil(8);
        let mut out = self.a.to_bytes_be_padded(w);
        out.extend_from_slice(&self.b.to_bytes_be_padded(w));
        out
    }
}

/// Arithmetic in `F_p²`, parameterized by the base-field context.
#[derive(Debug, Clone)]
pub struct Fp2Ctx {
    /// Base field.
    pub fp: Fp,
}

impl Fp2Ctx {
    /// Wraps a base-field context.
    pub fn new(fp: Fp) -> Fp2Ctx {
        Fp2Ctx { fp }
    }

    /// `x + y`.
    pub fn add(&self, x: &Fp2, y: &Fp2) -> Fp2 {
        Fp2 {
            a: self.fp.add(&x.a, &y.a),
            b: self.fp.add(&x.b, &y.b),
        }
    }

    /// `x - y`.
    pub fn sub(&self, x: &Fp2, y: &Fp2) -> Fp2 {
        Fp2 {
            a: self.fp.sub(&x.a, &y.a),
            b: self.fp.sub(&x.b, &y.b),
        }
    }

    /// `x · y` — (a+bi)(c+di) = (ac − bd) + (ad + bc)i.
    pub fn mul(&self, x: &Fp2, y: &Fp2) -> Fp2 {
        let ac = self.fp.mul(&x.a, &y.a);
        let bd = self.fp.mul(&x.b, &y.b);
        let ad = self.fp.mul(&x.a, &y.b);
        let bc = self.fp.mul(&x.b, &y.a);
        Fp2 {
            a: self.fp.sub(&ac, &bd),
            b: self.fp.add(&ad, &bc),
        }
    }

    /// `x²` (saves one base-field multiplication).
    pub fn square(&self, x: &Fp2) -> Fp2 {
        // (a+bi)² = (a+b)(a−b) + 2ab·i
        let sum = self.fp.add(&x.a, &x.b);
        let diff = self.fp.sub(&x.a, &x.b);
        let ab = self.fp.mul(&x.a, &x.b);
        Fp2 {
            a: self.fp.mul(&sum, &diff),
            b: self.fp.add(&ab, &ab),
        }
    }

    /// Conjugate `a − bi` (the Frobenius `x^p`).
    pub fn conj(&self, x: &Fp2) -> Fp2 {
        Fp2 {
            a: x.a.clone(),
            b: self.fp.neg(&x.b),
        }
    }

    /// `x⁻¹ = conj(x) / (a² + b²)`.
    pub fn inv(&self, x: &Fp2) -> Fp2 {
        let norm = self.fp.add(&self.fp.square(&x.a), &self.fp.square(&x.b));
        let ninv = self.fp.inv(&norm);
        Fp2 {
            a: self.fp.mul(&x.a, &ninv),
            b: self.fp.mul(&self.fp.neg(&x.b), &ninv),
        }
    }

    /// `x^e` by square-and-multiply.
    pub fn pow(&self, x: &Fp2, e: &BigUint) -> Fp2 {
        let mut acc = Fp2::one();
        let nbits = e.bits();
        for i in (0..nbits).rev() {
            acc = self.square(&acc);
            if e.bit(i) {
                acc = self.mul(&acc, x);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Fp2Ctx {
        Fp2Ctx::new(Fp::new(&BigUint::from(1_000_003u64)))
    }

    fn el(a: u64, b: u64) -> Fp2 {
        Fp2 {
            a: BigUint::from(a),
            b: BigUint::from(b),
        }
    }

    #[test]
    fn i_squared_is_minus_one() {
        let c = ctx();
        let i = el(0, 1);
        let i2 = c.mul(&i, &i);
        assert_eq!(
            i2,
            Fp2 {
                a: c.fp.neg(&BigUint::one()),
                b: BigUint::zero()
            }
        );
    }

    #[test]
    fn mul_matches_square() {
        let c = ctx();
        let x = el(1234, 5678);
        assert_eq!(c.square(&x), c.mul(&x, &x));
    }

    #[test]
    fn inv_roundtrip() {
        let c = ctx();
        let x = el(42, 99);
        assert_eq!(c.mul(&x, &c.inv(&x)), Fp2::one());
    }

    #[test]
    fn pow_group_order() {
        // |F_p²*| = p² − 1; Lagrange.
        let c = ctx();
        let x = el(3, 7);
        let ord = &(&c.fp.p * &c.fp.p) - 1u64;
        assert_eq!(c.pow(&x, &ord), Fp2::one());
        assert_eq!(c.pow(&x, &BigUint::zero()), Fp2::one());
        assert_eq!(c.pow(&x, &BigUint::one()), x);
    }

    #[test]
    fn conj_is_frobenius() {
        let c = ctx();
        let x = el(11, 13);
        assert_eq!(c.pow(&x, &c.fp.p), c.conj(&x));
    }

    #[test]
    fn zero_and_one_laws() {
        let c = ctx();
        let x = el(321, 654);
        assert_eq!(c.add(&x, &Fp2::zero()), x);
        assert_eq!(c.mul(&x, &Fp2::one()), x);
        assert_eq!(c.mul(&x, &Fp2::zero()), Fp2::zero());
        assert!(Fp2::zero().is_zero());
        assert!(Fp2::one().is_one());
        assert!(!x.is_zero() && !x.is_one());
    }

    #[test]
    fn norm_multiplicative_via_conj() {
        // N(x) = x · conj(x) lies in F_p and is multiplicative.
        let c = ctx();
        let x = el(17, 29);
        let y = el(5, 83);
        let nx = c.mul(&x, &c.conj(&x));
        let ny = c.mul(&y, &c.conj(&y));
        let nxy = c.mul(&c.mul(&x, &y), &c.conj(&c.mul(&x, &y)));
        assert!(nx.b.is_zero() && ny.b.is_zero() && nxy.b.is_zero());
        assert_eq!(nxy.a, c.fp.mul(&nx.a, &ny.a));
    }

    #[test]
    fn distributive() {
        let c = ctx();
        let (x, y, z) = (el(2, 3), el(5, 7), el(9, 1));
        assert_eq!(
            c.mul(&x, &c.add(&y, &z)),
            c.add(&c.mul(&x, &y), &c.mul(&x, &z))
        );
    }
}
