//! Type-A pairing parameter generation and front-end — the Rust
//! equivalent of jPBC's `TypeACurveGenerator` (paper ref \[33\]).
//!
//! Parameters: prime group order `r`, cofactor `h ≡ 0 (mod 4)` with
//! `p = h·r − 1` prime. Then `p ≡ 3 (mod 4)`, `#E(F_p) = p + 1 = h·r`,
//! and multiplying random points by `h` lands in the order-`r` torsion
//! subgroup `G`, on which [`TypeAPairing::pairing`] is a symmetric,
//! non-degenerate bilinear map into `μ_r ⊂ F_p²`.

use super::curve::{Curve, Point};
use super::fp::Fp;
use super::fp2::{Fp2, Fp2Ctx};
use super::miller::tate_pairing;
use ppms_bigint::{random_below, BigUint};
use ppms_primes::gen::random_prime;
use ppms_primes::miller_rabin::is_probable_prime_rounds;
use rand::Rng;

/// A complete Type-A pairing instance.
#[derive(Debug, Clone)]
pub struct TypeAPairing {
    /// The curve `y² = x³ + x` over `F_p`.
    pub curve: Curve,
    /// Arithmetic for pairing values.
    pub fp2: Fp2Ctx,
    /// Prime order of the torsion subgroup `G`.
    pub r: BigUint,
    /// Cofactor (`p + 1 = h·r`).
    pub h: BigUint,
    /// Canonical generator of `G`.
    pub g: Point,
}

impl TypeAPairing {
    /// Generates parameters with an `r_bits`-bit group order.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, r_bits: usize) -> TypeAPairing {
        assert!(r_bits >= 16, "group order too small to be meaningful");
        let r = random_prime(rng, r_bits);
        // Search cofactors h = 4, 8, 12, ... for prime p = h·r − 1.
        let mut h = BigUint::from(4u64);
        let p = loop {
            let cand = &(&h * &r) - 1u64;
            if is_probable_prime_rounds(&cand, 32, rng) {
                break cand;
            }
            h = &h + &BigUint::from(4u64);
        };
        debug_assert_eq!(&p % 4u64, 3);

        let fp = Fp::new(&p);
        let curve = Curve::new(fp.clone());
        let fp2 = Fp2Ctx::new(fp);

        // Generator: cofactor-multiply random points into G.
        let g = loop {
            let pt = curve.random_point(rng);
            let g = curve.mul(&h, &pt);
            if !g.is_infinity() {
                debug_assert!(curve.mul(&r, &g).is_infinity());
                break g;
            }
        };

        TypeAPairing {
            curve,
            fp2,
            r,
            h,
            g,
        }
    }

    /// The symmetric pairing `ê(P, Q)` for `P, Q ∈ G`.
    pub fn pairing(&self, p: &Point, q: &Point) -> Fp2 {
        tate_pairing(&self.curve, &self.fp2, p, q, &self.r)
    }

    /// Scalar multiplication in `G`.
    pub fn mul(&self, k: &BigUint, p: &Point) -> Point {
        self.curve.mul(&(k % &self.r), p)
    }

    /// `k·g`.
    pub fn g_mul(&self, k: &BigUint) -> Point {
        self.mul(k, &self.g.clone())
    }

    /// Uniform scalar in `[0, r)`.
    pub fn random_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        random_below(rng, &self.r)
    }

    /// Uniform element of `G` (never infinity).
    pub fn random_torsion_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        loop {
            let k = self.random_scalar(rng);
            let pt = self.g_mul(&k);
            if !pt.is_infinity() {
                return pt;
            }
        }
    }

    /// Exponentiation in the target group `μ_r`.
    pub fn gt_pow(&self, x: &Fp2, e: &BigUint) -> Fp2 {
        self.fp2.pow(x, &(e % &self.r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pairing() -> TypeAPairing {
        let mut rng = StdRng::seed_from_u64(7);
        TypeAPairing::generate(&mut rng, 48)
    }

    #[test]
    fn parameters_wellformed() {
        let e = pairing();
        let p_plus_1 = &e.curve.fp.p + 1u64;
        assert_eq!(&e.h * &e.r, p_plus_1, "p + 1 = h·r");
        assert_eq!(&e.curve.fp.p % 4u64, 3);
        assert!(e.curve.is_on_curve(&e.g));
        assert!(
            e.curve.mul(&e.r, &e.g).is_infinity(),
            "generator has order r"
        );
    }

    #[test]
    fn non_degenerate() {
        let e = pairing();
        let v = e.pairing(&e.g, &e.g);
        assert!(!v.is_one(), "e(g, g) must generate μ_r");
        // Output has order dividing r (and exactly r by primality).
        assert!(e.fp2.pow(&v, &e.r).is_one());
    }

    #[test]
    fn bilinearity() {
        let e = pairing();
        let mut rng = StdRng::seed_from_u64(1);
        let a = e.random_scalar(&mut rng);
        let b = e.random_scalar(&mut rng);
        let lhs = e.pairing(&e.g_mul(&a), &e.g_mul(&b));
        let base = e.pairing(&e.g, &e.g);
        let rhs = e.gt_pow(&base, &a.modmul(&b, &e.r));
        assert_eq!(lhs, rhs, "e(aG, bG) = e(G, G)^(ab)");
    }

    #[test]
    fn bilinear_in_each_slot() {
        let e = pairing();
        let mut rng = StdRng::seed_from_u64(2);
        let p = e.random_torsion_point(&mut rng);
        let q = e.random_torsion_point(&mut rng);
        let k = e.random_scalar(&mut rng);
        let kp_q = e.pairing(&e.mul(&k, &p), &q);
        let p_kq = e.pairing(&p, &e.mul(&k, &q));
        let pq_k = e.gt_pow(&e.pairing(&p, &q), &k);
        assert_eq!(kp_q, pq_k);
        assert_eq!(p_kq, pq_k);
    }

    #[test]
    fn symmetric() {
        let e = pairing();
        let mut rng = StdRng::seed_from_u64(3);
        let p = e.random_torsion_point(&mut rng);
        let q = e.random_torsion_point(&mut rng);
        assert_eq!(e.pairing(&p, &q), e.pairing(&q, &p));
    }

    #[test]
    fn infinity_maps_to_one() {
        let e = pairing();
        assert!(e.pairing(&Point::Infinity, &e.g).is_one());
        assert!(e.pairing(&e.g, &Point::Infinity).is_one());
    }

    #[test]
    fn multiplicative_in_first_argument() {
        let e = pairing();
        let mut rng = StdRng::seed_from_u64(4);
        let p1 = e.random_torsion_point(&mut rng);
        let p2 = e.random_torsion_point(&mut rng);
        let q = e.random_torsion_point(&mut rng);
        let lhs = e.pairing(&e.curve.add(&p1, &p2), &q);
        let rhs = e.fp2.mul(&e.pairing(&p1, &q), &e.pairing(&p2, &q));
        assert_eq!(lhs, rhs, "e(P1 + P2, Q) = e(P1, Q)·e(P2, Q)");
    }
}
