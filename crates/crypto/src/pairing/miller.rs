//! Miller's algorithm for the Tate pairing on the Type-A curve,
//! with the distortion map and denominator elimination.
//!
//! We compute `ê(P, Q) = f_{r,P}(φ(Q))^((p²−1)/r)` where
//! `φ(x, y) = (−x, i·y)` is the distortion map into `E(F_p²)`.
//!
//! Denominator elimination: with embedding degree 2 the vertical-line
//! factors of Miller's algorithm evaluate in `F_p*`, and anything in
//! `F_p*` is annihilated by the final exponentiation (because
//! `(p²−1)/r = (p−1)·((p+1)/r)` and `a^(p−1) = 1` for `a ∈ F_p*`),
//! so they are skipped entirely.

use super::curve::{Curve, Point};
use super::fp2::{Fp2, Fp2Ctx};
use ppms_bigint::BigUint;

/// Evaluates the Miller line through `t` (and `p`, or tangent when
/// doubling) at the distorted point `φ(Q) = (−xq, i·yq)`.
///
/// For a line `y = λ(x − x1) + y1`, the evaluation at `φ(Q)` is
/// `i·yq − λ(−xq − x1) − y1`, i.e. real part `−λ(−xq − x1) − y1`
/// and imaginary part `yq`.
fn line_eval(
    curve: &Curve,
    lam: &BigUint,
    x1: &BigUint,
    y1: &BigUint,
    xq: &BigUint,
    yq: &BigUint,
) -> Fp2 {
    let f = &curve.fp;
    // real = −(λ(−xq − x1) + y1) = λ(xq + x1) − y1
    let real = f.sub(&f.mul(lam, &f.add(xq, x1)), y1);
    Fp2 {
        a: real,
        b: yq.clone(),
    }
}

/// The Miller loop `f_{r,P}(φ(Q))` (unreduced pairing value).
fn miller_loop(curve: &Curve, fp2: &Fp2Ctx, p: &Point, q: &Point, r: &BigUint) -> Fp2 {
    let (Point::Affine { x: xq, y: yq }, false) = (q, p.is_infinity()) else {
        return Fp2::one();
    };
    let f = &curve.fp;
    let mut acc = Fp2::one();
    let mut t = p.clone();
    for i in (0..r.bits() - 1).rev() {
        // Doubling step.
        if let Point::Affine { x: x1, y: y1 } = &t {
            acc = fp2.square(&acc);
            if y1.is_zero() {
                // Tangent is vertical (order-2 point): contributes an
                // F_p factor only — eliminated.
                t = Point::Infinity;
            } else {
                let x1sq = f.square(x1);
                let num = f.add(&f.add(&x1sq, &f.add(&x1sq, &x1sq)), &BigUint::one());
                let den = f.add(y1, y1);
                let lam = f.mul(&num, &f.inv(&den));
                acc = fp2.mul(&acc, &line_eval(curve, &lam, x1, y1, xq, yq));
                t = curve.add(&t, &t);
            }
        } else {
            acc = fp2.square(&acc);
        }
        // Addition step.
        if r.bit(i) {
            if let (Point::Affine { x: x1, y: y1 }, Point::Affine { x: x2, y: y2 }) = (&t, p) {
                if x1 == x2 {
                    // Vertical chord (T = −P): F_p factor — eliminated.
                    t = Point::Infinity;
                } else {
                    let num = f.sub(y2, y1);
                    let den = f.sub(x2, x1);
                    let lam = f.mul(&num, &f.inv(&den));
                    acc = fp2.mul(&acc, &line_eval(curve, &lam, x1, y1, xq, yq));
                    t = curve.add(&t, p);
                }
            } else if t.is_infinity() {
                t = p.clone();
            }
        }
    }
    acc
}

/// Full reduced Tate pairing with distortion:
/// `ê(P, Q) = f_{r,P}(φ(Q))^((p²−1)/r)`.
pub fn tate_pairing(curve: &Curve, fp2: &Fp2Ctx, p: &Point, q: &Point, r: &BigUint) -> Fp2 {
    if p.is_infinity() || q.is_infinity() {
        return Fp2::one();
    }
    let raw = miller_loop(curve, fp2, p, q, r);
    if raw.is_zero() {
        // Degenerate evaluation (P, Q in special position) — the
        // pairing of torsion points never hits this for valid inputs.
        return Fp2::one();
    }
    let p2_minus_1 = &(&curve.fp.p * &curve.fp.p) - 1u64;
    let exp = &p2_minus_1 / r;
    fp2.pow(&raw, &exp)
}
