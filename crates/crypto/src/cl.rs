//! Camenisch–Lysyanskaya signatures (paper ref \[27\], CRYPTO 2004
//! "Scheme A") over the Type-A pairing.
//!
//! Keys: secret `(x, y)`, public `(X, Y) = (x·g, y·g)`.
//! Signature on `m ∈ Z_r`: pick random `a ∈ G`, output
//! `(a, b, c) = (a, y·a, (x + m·x·y)·a)`.
//! Verification (two pairing equations):
//!
//! ```text
//! ê(a, Y)           == ê(g, b)
//! ê(X, a)·ê(X, b)^m == ê(g, c)
//! ```
//!
//! In PPMSdec the JO binds a CL public key to its bank account and
//! authorizes withdrawals by CL-signing a fresh nonce (the paper's
//! `clpk_JO` in the money-withdrawal phase).

use crate::hash::hash_to_int;
use crate::pairing::{Point, TypeAPairing};
use ppms_bigint::BigUint;
use rand::Rng;

/// A CL public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClPublicKey {
    /// `X = x·g`.
    pub x_pub: Point,
    /// `Y = y·g`.
    pub y_pub: Point,
}

impl ClPublicKey {
    /// Canonical encoding for identity binding and traffic accounting.
    pub fn to_bytes(&self, pairing: &TypeAPairing) -> Vec<u8> {
        let mut out = self.x_pub.to_bytes(&pairing.curve.fp);
        out.extend_from_slice(&self.y_pub.to_bytes(&pairing.curve.fp));
        out
    }
}

/// A CL key pair.
#[derive(Debug, Clone)]
pub struct ClKeyPair {
    /// Public part.
    pub public: ClPublicKey,
    x: BigUint,
    y: BigUint,
}

/// A CL signature `(a, b, c)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClSignature {
    /// Random base point.
    pub a: Point,
    /// `b = y·a`.
    pub b: Point,
    /// `c = (x + m·x·y)·a`.
    pub c: Point,
}

impl ClKeyPair {
    /// Generates a key pair over `pairing`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, pairing: &TypeAPairing) -> ClKeyPair {
        let x = pairing.random_scalar(rng);
        let y = pairing.random_scalar(rng);
        let public = ClPublicKey {
            x_pub: pairing.g_mul(&x),
            y_pub: pairing.g_mul(&y),
        };
        ClKeyPair { public, x, y }
    }

    /// Signs a scalar message `m ∈ Z_r`.
    pub fn sign_scalar<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pairing: &TypeAPairing,
        m: &BigUint,
    ) -> ClSignature {
        let a = pairing.random_torsion_point(rng);
        let b = pairing.mul(&self.y, &a);
        // c = (x + m·x·y)·a
        let exp =
            (&self.x + &m.modmul(&self.x.modmul(&self.y, &pairing.r), &pairing.r)) % &pairing.r;
        let c = pairing.mul(&exp, &a);
        ClSignature { a, b, c }
    }

    /// Signs arbitrary bytes (hashed into `Z_r`).
    pub fn sign_bytes<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pairing: &TypeAPairing,
        msg: &[u8],
    ) -> ClSignature {
        self.sign_scalar(rng, pairing, &hash_msg(pairing, msg))
    }
}

/// Hashes bytes to a CL message scalar.
pub fn hash_msg(pairing: &TypeAPairing, msg: &[u8]) -> BigUint {
    hash_to_int("ppms-cl-msg", &[msg], &pairing.r)
}

impl ClSignature {
    /// Verifies against a scalar message.
    pub fn verify_scalar(&self, pairing: &TypeAPairing, pk: &ClPublicKey, m: &BigUint) -> bool {
        if self.a.is_infinity() {
            return false;
        }
        if !pairing.curve.is_on_curve(&self.a)
            || !pairing.curve.is_on_curve(&self.b)
            || !pairing.curve.is_on_curve(&self.c)
        {
            return false;
        }
        // ê(a, Y) == ê(g, b)
        let lhs1 = pairing.pairing(&self.a, &pk.y_pub);
        let rhs1 = pairing.pairing(&pairing.g, &self.b);
        if lhs1 != rhs1 {
            return false;
        }
        // ê(X, a)·ê(X, b)^m == ê(g, c)
        let e_xa = pairing.pairing(&pk.x_pub, &self.a);
        let e_xb_m = pairing.gt_pow(&pairing.pairing(&pk.x_pub, &self.b), m);
        let lhs2 = pairing.fp2.mul(&e_xa, &e_xb_m);
        let rhs2 = pairing.pairing(&pairing.g, &self.c);
        lhs2 == rhs2
    }

    /// Verifies against a byte message.
    pub fn verify_bytes(&self, pairing: &TypeAPairing, pk: &ClPublicKey, msg: &[u8]) -> bool {
        self.verify_scalar(pairing, pk, &hash_msg(pairing, msg))
    }

    /// Re-randomizes the signature (CL signatures stay valid under
    /// `(a, b, c) → (t·a, t·b, t·c)`) — the property that makes them
    /// suitable for anonymous credentials.
    pub fn randomize<R: Rng + ?Sized>(&self, rng: &mut R, pairing: &TypeAPairing) -> ClSignature {
        loop {
            let t = pairing.random_scalar(rng);
            if t.is_zero() {
                continue;
            }
            return ClSignature {
                a: pairing.mul(&t, &self.a),
                b: pairing.mul(&t, &self.b),
                c: pairing.mul(&t, &self.c),
            };
        }
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self, pairing: &TypeAPairing) -> usize {
        self.a.to_bytes(&pairing.curve.fp).len()
            + self.b.to_bytes(&pairing.curve.fp).len()
            + self.c.to_bytes(&pairing.curve.fp).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TypeAPairing, ClKeyPair) {
        let mut rng = StdRng::seed_from_u64(1000);
        let pairing = TypeAPairing::generate(&mut rng, 48);
        let keys = ClKeyPair::generate(&mut rng, &pairing);
        (pairing, keys)
    }

    #[test]
    fn sign_verify_scalar() {
        let (pairing, keys) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let m = pairing.random_scalar(&mut rng);
        let sig = keys.sign_scalar(&mut rng, &pairing, &m);
        assert!(sig.verify_scalar(&pairing, &keys.public, &m));
    }

    #[test]
    fn sign_verify_bytes() {
        let (pairing, keys) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let sig = keys.sign_bytes(&mut rng, &pairing, b"withdrawal nonce 42");
        assert!(sig.verify_bytes(&pairing, &keys.public, b"withdrawal nonce 42"));
        assert!(!sig.verify_bytes(&pairing, &keys.public, b"withdrawal nonce 43"));
    }

    #[test]
    fn wrong_key_rejected() {
        let (pairing, keys) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let other = ClKeyPair::generate(&mut rng, &pairing);
        let m = pairing.random_scalar(&mut rng);
        let sig = keys.sign_scalar(&mut rng, &pairing, &m);
        assert!(!sig.verify_scalar(&pairing, &other.public, &m));
    }

    #[test]
    fn tampered_component_rejected() {
        let (pairing, keys) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let m = pairing.random_scalar(&mut rng);
        let sig = keys.sign_scalar(&mut rng, &pairing, &m);
        for field in 0..3 {
            let mut bad = sig.clone();
            let twist = pairing.random_torsion_point(&mut rng);
            match field {
                0 => bad.a = pairing.curve.add(&bad.a, &twist),
                1 => bad.b = pairing.curve.add(&bad.b, &twist),
                _ => bad.c = pairing.curve.add(&bad.c, &twist),
            }
            assert!(
                !bad.verify_scalar(&pairing, &keys.public, &m),
                "field {field}"
            );
        }
    }

    #[test]
    fn randomized_signature_still_verifies() {
        let (pairing, keys) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let m = pairing.random_scalar(&mut rng);
        let sig = keys.sign_scalar(&mut rng, &pairing, &m);
        let rand_sig = sig.randomize(&mut rng, &pairing);
        assert_ne!(rand_sig, sig, "randomization changes the triple");
        assert!(rand_sig.verify_scalar(&pairing, &keys.public, &m));
    }

    #[test]
    fn infinity_a_rejected() {
        let (pairing, keys) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let m = pairing.random_scalar(&mut rng);
        let mut sig = keys.sign_scalar(&mut rng, &pairing, &m);
        sig.a = Point::Infinity;
        sig.b = Point::Infinity;
        sig.c = Point::Infinity;
        assert!(
            !sig.verify_scalar(&pairing, &keys.public, &m),
            "all-infinity forgery"
        );
    }
}
