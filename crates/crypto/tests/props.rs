//! Property-based tests for the crypto substrate: RSA round-trips,
//! blind/partially-blind signature laws, ZKP completeness over random
//! witnesses, Pedersen homomorphism, and pairing bilinearity over
//! random scalars.
//!
//! Key generation is expensive, so each property reuses a small pool
//! of deterministic fixtures and lets proptest vary the *data*.

use ppms_bigint::BigUint;
use ppms_crypto::group::SchnorrGroup;
use ppms_crypto::pairing::TypeAPairing;
use ppms_crypto::pedersen::PedersenParams;
use ppms_crypto::rsa;
use ppms_crypto::zkp::orproof::OrProof;
use ppms_crypto::zkp::repr::ReprProof;
use ppms_crypto::zkp::schnorr::{self, SchnorrProof};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn rsa_key() -> &'static rsa::RsaPrivateKey {
    static KEY: OnceLock<rsa::RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xF1);
        rsa::keygen(&mut rng, 512)
    })
}

fn group() -> &'static SchnorrGroup {
    static G: OnceLock<SchnorrGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xF2);
        SchnorrGroup::generate(&mut rng, 64)
    })
}

fn pairing() -> &'static TypeAPairing {
    static P: OnceLock<TypeAPairing> = OnceLock::new();
    P.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xF3);
        TypeAPairing::generate(&mut rng, 40)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oaep_roundtrip(msg in prop::collection::vec(any::<u8>(), 0..300), seed in any::<u64>()) {
        let key = rsa_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = rsa::encrypt(&mut rng, &key.public, &msg);
        prop_assert_eq!(rsa::decrypt(key, &ct).unwrap(), msg);
    }

    #[test]
    fn oaep_tamper_never_decrypts_to_plaintext(msg in prop::collection::vec(any::<u8>(), 1..100), seed in any::<u64>(), flip in any::<(u16, u8)>()) {
        let key = rsa_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ct = rsa::encrypt(&mut rng, &key.public, &msg);
        let pos = flip.0 as usize % ct.len();
        let bit = 1u8 << (flip.1 % 8);
        ct[pos] ^= bit;
        match rsa::decrypt(key, &ct) {
            Err(_) => {}
            Ok(out) => prop_assert_ne!(out, msg, "tampered ciphertext must not silently decrypt"),
        }
    }

    #[test]
    fn fdh_sign_verify(msg in prop::collection::vec(any::<u8>(), 0..200)) {
        let key = rsa_key();
        let sig = rsa::sign(key, &msg);
        prop_assert!(rsa::verify(&key.public, &msg, &sig));
        let mut other = msg.clone();
        other.push(0x55);
        prop_assert!(!rsa::verify(&key.public, &other, &sig));
    }

    #[test]
    fn blind_signature_equals_direct(msg in prop::collection::vec(any::<u8>(), 1..100), seed in any::<u64>()) {
        let key = rsa_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let (blinded, factor) = rsa::blind(&mut rng, &key.public, &msg);
        let sig = rsa::unblind(&key.public, &rsa::sign_blinded(key, &blinded), &factor);
        prop_assert_eq!(sig, rsa::sign(key, &msg));
    }

    #[test]
    fn pbs_binds_info_and_message(info in prop::collection::vec(any::<u8>(), 1..40), msg in prop::collection::vec(any::<u8>(), 1..100), seed in any::<u64>()) {
        let key = rsa_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let (alpha, blinding) = rsa::pbs_blind(&mut rng, &key.public, &info, &msg);
        let beta = rsa::pbs_sign(key, &info, &alpha).unwrap();
        let sig = rsa::pbs_unblind(&key.public, &beta, &blinding);
        prop_assert!(rsa::pbs_verify(&key.public, &info, &msg, &sig));
        // Different info rejects.
        let mut info2 = info.clone();
        info2.push(1);
        prop_assert!(!rsa::pbs_verify(&key.public, &info2, &msg, &sig));
        // Different message rejects.
        let mut msg2 = msg.clone();
        msg2[0] ^= 1;
        prop_assert!(!rsa::pbs_verify(&key.public, &info, &msg2, &sig));
    }

    #[test]
    fn schnorr_completeness(seed in any::<u64>(), extra in prop::collection::vec(any::<u8>(), 0..32)) {
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let proof = SchnorrProof::prove(&mut rng, g, &g.g.clone(), &y, &x, "prop", &extra);
        prop_assert!(proof.verify(g, &g.g, &y, "prop", &extra));
    }

    #[test]
    fn schnorr_soundness_wrong_statement(seed in any::<u64>(), delta in 1u64..1000) {
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = g.random_exponent(&mut rng);
        let y = g.g_exp(&x);
        let y2 = g.g_exp(&((&x + delta) % &g.q));
        let proof = SchnorrProof::prove(&mut rng, g, &g.g.clone(), &y, &x, "prop", b"");
        if y != y2 {
            prop_assert!(!proof.verify(g, &g.g, &y2, "prop", b""));
        }
    }

    #[test]
    fn repr_completeness(seed in any::<u64>(), n_bases in 1usize..5) {
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let bases: Vec<BigUint> = (0..n_bases).map(|i| g.derive_generator(&format!("b{i}"))).collect();
        let xs: Vec<BigUint> = (0..n_bases).map(|_| g.random_exponent(&mut rng)).collect();
        let mut y = BigUint::one();
        for (b, x) in bases.iter().zip(&xs) {
            y = g.mul(&y, &g.exp(b, x));
        }
        let proof = ReprProof::prove(&mut rng, g, &bases, &y, &xs, "prop", b"");
        prop_assert!(proof.verify(g, &bases, &y, "prop", b""));
    }

    #[test]
    fn or_proof_completeness_both_branches(seed in any::<u64>(), known in 0usize..2) {
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = g.random_exponent(&mut rng);
        let mut ys = [g.random_element(&mut rng), g.random_element(&mut rng)];
        ys[known] = g.g_exp(&x);
        let proof = OrProof::prove(&mut rng, g, &g.g.clone(), &ys, &x, known, "prop", b"");
        prop_assert!(proof.verify(g, &g.g, &ys, "prop", b""));
    }

    #[test]
    fn schnorr_batch_matches_sequential_under_forgeries(
        seed in any::<u64>(),
        n in 1usize..12,
        bad_mask in any::<u16>(),
    ) {
        // Batch verify must return exactly the sequential verdicts:
        // true for every honest proof, false for every injected
        // forgery, with the bisection naming exactly the bad indices.
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proofs = Vec::new();
        let mut ys = Vec::new();
        let mut expected = Vec::new();
        for i in 0..n {
            let x = g.random_exponent(&mut rng);
            let y = g.g_exp(&x);
            let mut proof = SchnorrProof::prove(&mut rng, g, &g.g.clone(), &y, &x, "batch", b"");
            let bad = bad_mask & (1 << i) != 0;
            if bad {
                // Forge by perturbing the response.
                proof.s = (&proof.s + 1u64) % &g.q;
            }
            expected.push(!bad);
            proofs.push(proof);
            ys.push(y);
        }
        let items: Vec<schnorr::BatchItem> = proofs
            .iter()
            .zip(&ys)
            .map(|(proof, y)| schnorr::BatchItem { proof, g: &g.g, y, domain: "batch", extra: b"" })
            .collect();
        let got = schnorr::batch_verify(&mut rng, g, &items);
        prop_assert_eq!(&got, &expected);
        // And bit-identical to per-item sequential verification.
        let sequential: Vec<bool> = items
            .iter()
            .map(|it| it.proof.verify(g, it.g, it.y, it.domain, it.extra))
            .collect();
        prop_assert_eq!(got, sequential);
    }

    #[test]
    fn rsa_batch_matches_sequential_under_forgeries(
        seed in any::<u64>(),
        n in 1usize..10,
        bad_mask in any::<u16>(),
    ) {
        let key = rsa_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| format!("report-{seed}-{i}").into_bytes()).collect();
        let mut sigs: Vec<BigUint> = msgs.iter().map(|m| rsa::sign(key, m)).collect();
        let mut expected = Vec::new();
        for (i, sig) in sigs.iter_mut().enumerate() {
            let bad = bad_mask & (1 << i) != 0;
            if bad {
                // Corrupt: off-by-one (an out-of-range variant is
                // covered below via the sig >= n fast-fail).
                *sig = (&*sig + 1u64) % &key.public.n;
            }
            expected.push(!bad);
        }
        // One oversized signature exercises the fast-fail path.
        if n > 2 && bad_mask & 1 << 14 != 0 {
            sigs[0] = &key.public.n + 5u64;
            expected[0] = false;
        }
        let items: Vec<(&[u8], &BigUint)> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        let got = rsa::batch_verify(&mut rng, &key.public, &items);
        prop_assert_eq!(&got, &expected);
        let sequential: Vec<bool> = items
            .iter()
            .map(|(m, s)| rsa::verify(&key.public, m, s))
            .collect();
        prop_assert_eq!(got, sequential);
    }

    #[test]
    fn pedersen_homomorphism(m1 in any::<u64>(), m2 in any::<u64>(), seed in any::<u64>()) {
        let g = group();
        let params = PedersenParams::new(g.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let c1 = params.commit(&mut rng, &BigUint::from(m1));
        let c2 = params.commit(&mut rng, &BigUint::from(m2));
        let sum = params.add(&c1.value, &c2.value);
        let m = (&c1.message + &c2.message) % &g.q;
        let r = (&c1.randomness + &c2.randomness) % &g.q;
        prop_assert!(params.verify(&sum, &m, &r));
    }

    #[test]
    fn pairing_bilinearity_random_scalars(seed in any::<u64>()) {
        let e = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = e.random_scalar(&mut rng);
        let b = e.random_scalar(&mut rng);
        let lhs = e.pairing(&e.g_mul(&a), &e.g_mul(&b));
        let rhs = e.gt_pow(&e.pairing(&e.g, &e.g), &a.modmul(&b, &e.r));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn cl_signature_random_messages(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..64)) {
        let e = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = ppms_crypto::cl::ClKeyPair::generate(&mut rng, e);
        let sig = keys.sign_bytes(&mut rng, e, &msg);
        prop_assert!(sig.verify_bytes(e, &keys.public, &msg));
        let rand_sig = sig.randomize(&mut rng, e);
        prop_assert!(rand_sig.verify_bytes(e, &keys.public, &msg));
    }

    #[test]
    fn sha256_length_extension_resistant_framing(a in prop::collection::vec(any::<u8>(), 0..50), b in prop::collection::vec(any::<u8>(), 0..50)) {
        // hash_parts framing: (a, b) != (a || b) unless identical split.
        use ppms_crypto::hash::hash_parts;
        let joined = [a.clone(), b.clone()].concat();
        if !b.is_empty() {
            prop_assert_ne!(
                hash_parts("t", &[&a, &b]),
                hash_parts("t", &[&joined]),
                "length-prefixed framing must distinguish part boundaries"
            );
        }
    }
}
