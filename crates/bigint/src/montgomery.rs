//! Montgomery arithmetic: REDC-based modular multiplication and
//! exponentiation for odd moduli. This is the hot path of every RSA,
//! Schnorr-group and pairing operation in the workspace — `modpow`
//! dominates all of the paper's figures.

use crate::BigUint;

/// A reusable Montgomery context for a fixed odd modulus.
///
/// Construction precomputes `n' = -n^{-1} mod 2^64` and `R^2 mod n`
/// (`R = 2^(64·k)` for `k` limbs), after which each multiplication is a
/// single interleaved CIOS pass with no divisions.
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: BigUint,
    /// Number of limbs of `n`; all Montgomery residues use this width.
    pub(crate) k: usize,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n`, used to enter the Montgomery domain.
    r2: BigUint,
    /// `R mod n` = Montgomery form of 1.
    pub(crate) r1: BigUint,
}

/// `-n^{-1} mod 2^64` by Newton–Hensel lifting (n odd).
///
/// The seed `x = n0` is already an inverse of `n0` mod 2^3: every odd
/// `n0` satisfies `n0² ≡ 1 (mod 8)`, i.e. `n0·n0 ≡ 1`, so `x` starts
/// with 3 correct low bits. Each Hensel step
/// `x ← x·(2 − n0·x)` doubles the number of correct bits
/// (if `n0·x = 1 + ε·2^k` then `n0·x' = 1 − ε²·2^2k`), so the correct
/// bit count goes 3 → 6 → 12 → 24 → 48 → 96 ≥ 64: **5 lifts suffice**.
pub(crate) fn neg_inv_u64(n0: u64) -> u64 {
    debug_assert!(n0 & 1 == 1);
    let mut x = n0;
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
    }
    debug_assert_eq!(n0.wrapping_mul(x), 1);
    x.wrapping_neg()
}

impl Montgomery {
    /// Creates a context for odd modulus `n > 1`.
    ///
    /// Panics if `n` is even or `<= 1`.
    pub fn new(n: &BigUint) -> Montgomery {
        assert!(
            n.is_odd() && !n.is_one(),
            "Montgomery requires an odd modulus > 1"
        );
        let k = n.limbs().len();
        let n_prime = neg_inv_u64(n.limbs()[0]);
        let r1 = &(BigUint::one() << (64 * k)) % n;
        let r2 = &(&r1 * &r1) % n;
        Montgomery {
            n: n.clone(),
            k,
            n_prime,
            r2,
            r1,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Montgomery reduction of a product accumulator (CIOS form):
    /// computes `a * b * R^{-1} mod n` where `a`, `b` are `k`-limb
    /// Montgomery residues.
    #[allow(clippy::needless_range_loop)] // explicit limb indexing mirrors the CIOS paper
    pub(crate) fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        let n = self.n.limbs();
        // t has k+2 limbs: accumulator for CIOS.
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let x = t[j] as u128 + ai as u128 * b.get(j).copied().unwrap_or(0) as u128 + carry;
                t[j] = x as u64;
                carry = x >> 64;
            }
            let x = t[k] as u128 + carry;
            t[k] = x as u64;
            t[k + 1] = (x >> 64) as u64;

            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let x = t[0] as u128 + m as u128 * n[0] as u128;
            let mut carry = x >> 64;
            for j in 1..k {
                let x = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = x as u64;
                carry = x >> 64;
            }
            let x = t[k] as u128 + carry;
            t[k - 1] = x as u64;
            t[k] = t[k + 1] + (x >> 64) as u64;
            t[k + 1] = 0;
        }
        // Final conditional subtraction.
        let mut out = t[..=k].to_vec();
        let needs_sub = out[k] != 0 || {
            // compare out[..k] >= n
            let mut ge = true;
            for j in (0..k).rev() {
                if out[j] != n[j] {
                    ge = out[j] > n[j];
                    break;
                }
            }
            ge
        };
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = out[j].overflowing_sub(n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 | b2) as u64;
            }
            out[k] = out[k].wrapping_sub(borrow);
        }
        out.truncate(k);
        out
    }

    /// Standalone word-by-word Montgomery reduction of a double-width
    /// accumulator: computes `t * R^{-1} mod n` for `t < n·R`.
    ///
    /// Unlike the interleaved CIOS pass in [`mont_mul`], this takes a
    /// ready-made product, which lets squarings use the dedicated
    /// square kernel (≈ half the 64×64 partial products) and pay only
    /// the `k²` reduction muls here instead of a full `2k²` CIOS pass.
    ///
    /// [`mont_mul`]: Montgomery::mont_mul
    pub(crate) fn redc(&self, t: &[u64]) -> Vec<u64> {
        let k = self.k;
        let n = self.n.limbs();
        debug_assert!(t.len() <= 2 * k);
        let mut acc = vec![0u64; 2 * k + 1];
        acc[..t.len()].copy_from_slice(t);
        for i in 0..k {
            let m = acc[i].wrapping_mul(self.n_prime);
            if m == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &nj) in n.iter().enumerate() {
                let x = acc[i + j] as u128 + m as u128 * nj as u128 + carry;
                acc[i + j] = x as u64;
                carry = x >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let x = acc[idx] as u128 + carry;
                acc[idx] = x as u64;
                carry = x >> 64;
                idx += 1;
            }
        }
        // (t + Σ mᵢ·n·2^{64i}) / R lives in acc[k..=2k] and is < 2n.
        let mut out = acc[k..=2 * k].to_vec();
        let needs_sub = out[k] != 0 || {
            let mut ge = true;
            for j in (0..k).rev() {
                if out[j] != n[j] {
                    ge = out[j] > n[j];
                    break;
                }
            }
            ge
        };
        if needs_sub {
            let mut borrow = 0u64;
            for (j, &nj) in n.iter().enumerate() {
                let (d1, b1) = out[j].overflowing_sub(nj);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 | b2) as u64;
            }
            out[k] = out[k].wrapping_sub(borrow);
        }
        out.truncate(k);
        out
    }

    /// `a² * R^{-1} mod n` for a `k`-limb Montgomery residue: square
    /// kernel + standalone reduction. This is what the pow ladders
    /// spend most of their time in — an exponentiation is ~4 squarings
    /// per multiply with 4-bit windows.
    pub(crate) fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        self.redc(&crate::mul::sqr_limbs(a))
    }

    /// Converts into the Montgomery domain (`x * R mod n`).
    pub(crate) fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        let x = x % &self.n;
        self.mont_mul(x.limbs(), self.r2.limbs())
    }

    /// Converts out of the Montgomery domain.
    #[allow(clippy::wrong_self_convention)] // reads as "from Montgomery form", not a constructor
    pub(crate) fn from_mont(&self, x: &[u64]) -> BigUint {
        BigUint::from_limbs(self.mont_mul(x, &[1]))
    }

    /// `a * b mod n` through the Montgomery domain.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod n` with a 4-bit fixed window over Montgomery
    /// residues.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return &BigUint::one() % &self.n;
        }
        let bm = self.to_mont(base);
        // Window table: w[i] = base^i in Montgomery form, i in 0..16.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.limbs().to_vec()); // base^0 = 1 (Montgomery form of 1 is R mod n)
        let mut t0 = table[0].clone();
        t0.resize(self.k, 0);
        table[0] = t0;
        for i in 1..16 {
            table.push(self.mont_mul(&table[i - 1], &bm));
        }

        let nbits = exp.bits();
        let nwindows = nbits.div_ceil(4);
        let mut acc = table[0].clone(); // 1 in Montgomery form
        let mut started = false;
        for w in (0..nwindows).rev() {
            if started {
                for _ in 0..4 {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut digit = 0usize;
            for b in 0..4 {
                let bit = w * 4 + (3 - b);
                digit <<= 1;
                if exp.bit(bit) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
                started = true;
            } else if started {
                // keep squaring; nothing to multiply
            } else {
                // leading zero window before the first set bit
            }
        }
        if !started {
            // exp had no set bits — handled above, but keep safe.
            return &BigUint::one() % &self.n;
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    /// Reference modpow: plain square-and-multiply with divrem.
    fn modpow_naive(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
        let mut acc = &BigUint::one() % m;
        let mut b = base % m;
        for i in 0..exp.bits() {
            if exp.bit(i) {
                acc = &(&acc * &b) % m;
            }
            b = &(&b * &b) % m;
        }
        acc
    }

    #[test]
    fn neg_inv_works() {
        for n0 in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let x = neg_inv_u64(n0);
            assert_eq!(n0.wrapping_mul(x), 1u64.wrapping_neg(), "n0 = {n0:#x}");
        }
    }

    #[test]
    fn neg_inv_exhaustive_odd_u8() {
        // Every odd 8-bit value, embedded in u64 — small enough to
        // enumerate completely, and the low byte is exactly where the
        // 3-bit seed of the Hensel lift starts.
        for low in (1u64..256).step_by(2) {
            let x = neg_inv_u64(low);
            assert_eq!(low.wrapping_mul(x), 1u64.wrapping_neg(), "n0 = {low:#x}");
        }
    }

    #[test]
    fn neg_inv_randomized_u64() {
        // Deterministic xorshift64* stream, forced odd: exercises the
        // full 64-bit range the 5-lift doubling argument covers.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..1000 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let n0 = state.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
            let x = neg_inv_u64(n0);
            assert_eq!(n0.wrapping_mul(x), 1u64.wrapping_neg(), "n0 = {n0:#x}");
        }
    }

    #[test]
    fn mont_mul_small() {
        let n = BigUint::from(101u64);
        let mont = Montgomery::new(&n);
        assert_eq!(
            mont.mul(&BigUint::from(7u64), &BigUint::from(20u64)),
            BigUint::from(39u64)
        );
        assert_eq!(
            mont.mul(&BigUint::from(100u64), &BigUint::from(100u64)),
            BigUint::from(1u64)
        );
    }

    #[test]
    fn modpow_fermat() {
        // a^(p-1) = 1 mod p for prime p.
        let p = BigUint::from(1_000_000_007u64);
        let mont = Montgomery::new(&p);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(
                mont.modpow(&BigUint::from(a), &(&p - 1u64)),
                BigUint::one(),
                "a = {a}"
            );
        }
    }

    #[test]
    fn modpow_matches_naive_multilimb() {
        // 192-bit odd modulus.
        let m = BigUint::parse_hex("f123456789abcdef0123456789abcdef0123456789abcdef").unwrap();
        assert!(m.is_odd());
        let base = BigUint::parse_hex("deadbeefcafebabe1122334455667788").unwrap();
        let exp = BigUint::parse_hex("0102030405060708090a0b0c0d0e0f10").unwrap();
        let mont = Montgomery::new(&m);
        assert_eq!(mont.modpow(&base, &exp), modpow_naive(&base, &exp, &m));
    }

    #[test]
    fn modpow_edges() {
        let m = BigUint::from(99991u64);
        let mont = Montgomery::new(&m);
        assert_eq!(
            mont.modpow(&BigUint::from(5u64), &BigUint::zero()),
            BigUint::one()
        );
        assert_eq!(
            mont.modpow(&BigUint::zero(), &BigUint::from(5u64)),
            BigUint::zero()
        );
        assert_eq!(
            mont.modpow(&BigUint::from(5u64), &BigUint::one()),
            BigUint::from(5u64)
        );
        // base >= modulus gets reduced first
        assert_eq!(
            mont.modpow(&(&m + 7u64), &BigUint::two()),
            BigUint::from(49u64)
        );
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_panics() {
        Montgomery::new(&BigUint::from(100u64));
    }

    #[test]
    fn mont_sqr_matches_mont_mul() {
        let m = BigUint::parse_hex("f123456789abcdef0123456789abcdef0123456789abcdef").unwrap();
        let mont = Montgomery::new(&m);
        let mut x = BigUint::from(0xDEAD_BEEF_CAFE_BABEu64);
        for _ in 0..50 {
            let xm = mont.to_mont(&x);
            assert_eq!(mont.mont_sqr(&xm), mont.mont_mul(&xm, &xm), "x = {x:?}");
            // Walk through pseudo-random residues.
            x = mont.mul(&x, &BigUint::from(0x9E37_79B9_7F4A_7C15u64)) + BigUint::one();
        }
        // Montgomery form of 0 and 1.
        let zero = vec![0u64; mont.k];
        assert_eq!(mont.mont_sqr(&zero), mont.mont_mul(&zero, &zero));
        let one = mont.to_mont(&BigUint::one());
        assert_eq!(mont.mont_sqr(&one), mont.mont_mul(&one, &one));
    }

    #[test]
    fn redc_matches_from_mont_on_products() {
        // redc of a full product a*b equals mont_mul(a, b).
        let m = BigUint::parse_hex("c0ffee123456789abcdef0123456789abcdef0123456789b").unwrap();
        let mont = Montgomery::new(&m);
        let a = mont.to_mont(&BigUint::from(123_456_789_012_345u64));
        let b = mont.to_mont(&BigUint::from(987_654_321_098_765u64));
        let prod = BigUint::from_limbs(a.clone()) * BigUint::from_limbs(b.clone());
        let mut limbs = prod.limbs().to_vec();
        limbs.resize(2 * mont.k, 0);
        assert_eq!(mont.redc(&limbs), mont.mont_mul(&a, &b));
    }
}
