//! Random [`BigUint`] generation from any [`rand::RngCore`].

use crate::BigUint;
use rand::Rng;

/// Uniformly random value with exactly `bits` significant bits
/// (top bit forced to 1). `bits == 0` returns zero.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let nlimbs = bits.div_ceil(64);
    let mut limbs = vec![0u64; nlimbs];
    for l in limbs.iter_mut() {
        *l = rng.next_u64();
    }
    // Mask off excess high bits, then force the top bit.
    let top_bits = bits - (nlimbs - 1) * 64;
    if top_bits < 64 {
        limbs[nlimbs - 1] &= (1u64 << top_bits) - 1;
    }
    limbs[nlimbs - 1] |= 1u64 << (top_bits - 1);
    BigUint::from_limbs(limbs)
}

/// Random odd value with exactly `bits` bits (`bits >= 2`).
pub fn random_odd_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(
        bits >= 2,
        "need at least 2 bits for an odd value with a set top bit"
    );
    let mut v = random_bits(rng, bits);
    v.set_bit(0, true);
    v
}

/// Uniformly random value in `[0, bound)` by rejection sampling.
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "empty range");
    let bits = bound.bits();
    let nlimbs = bits.div_ceil(64);
    let top_bits = bits - (nlimbs - 1) * 64;
    let mask = if top_bits == 64 {
        u64::MAX
    } else {
        (1u64 << top_bits) - 1
    };
    loop {
        let mut limbs = vec![0u64; nlimbs];
        for l in limbs.iter_mut() {
            *l = rng.next_u64();
        }
        limbs[nlimbs - 1] &= mask;
        let v = BigUint::from_limbs(limbs);
        if &v < bound {
            return v;
        }
    }
}

/// Uniformly random value in `[1, bound)`.
pub fn random_unit_range<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(bound > &BigUint::one(), "range [1, bound) is empty");
    loop {
        let v = random_below(rng, bound);
        if !v.is_zero() {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_exact_width() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [1usize, 2, 63, 64, 65, 127, 128, 1024] {
            let v = random_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits, "requested {bits}");
        }
        assert!(random_bits(&mut rng, 0).is_zero());
    }

    #[test]
    fn random_odd_is_odd() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let v = random_odd_bits(&mut rng, 64);
            assert!(v.is_odd());
            assert_eq!(v.bits(), 64);
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
        // bound = 1 always yields 0
        assert!(random_below(&mut rng, &BigUint::one()).is_zero());
    }

    #[test]
    fn random_below_hits_small_range_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let bound = BigUint::from(3u64);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = random_below(&mut rng, &bound).to_u64().unwrap() as usize;
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..3 should appear in 100 draws"
        );
    }

    #[test]
    fn random_unit_range_nonzero() {
        let mut rng = StdRng::seed_from_u64(5);
        let bound = BigUint::from(2u64);
        for _ in 0..20 {
            assert_eq!(random_unit_range(&mut rng, &bound), BigUint::one());
        }
    }
}
