//! A minimal signed integer built on [`BigUint`]. Used where
//! intermediate values may go negative: extended gcd, Fiat–Shamir
//! responses, pairing line evaluations.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// Signed arbitrary-precision integer (magnitude + sign).
///
/// Canonical form: zero is always `(Plus, 0)`.
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::zero(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// Wraps an unsigned value as non-negative.
    pub fn from_biguint(mag: BigUint) -> Self {
        BigInt {
            sign: Sign::Plus,
            mag,
        }
    }

    /// Builds from sign and magnitude, canonicalizing zero.
    pub fn new(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// `true` iff negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes into the magnitude (absolute value).
    pub fn abs_biguint(&self) -> BigUint {
        self.mag.clone()
    }

    /// Canonical non-negative residue mod `m` (in `[0, m)`).
    pub fn mod_floor(&self, m: &BigUint) -> BigUint {
        let r = &self.mag % m;
        match self.sign {
            Sign::Plus => r,
            Sign::Minus => {
                if r.is_zero() {
                    r
                } else {
                    m - &r
                }
            }
        }
    }

    /// Floor division with remainder of the same sign as the divisor —
    /// exactly what the extended Euclid loop needs.
    pub fn divrem_floor(&self, d: &BigInt) -> (BigInt, BigInt) {
        assert!(!d.is_zero(), "division by zero BigInt");
        let (q_mag, r_mag) = self.mag.divrem(&d.mag);
        match (self.sign, d.sign) {
            (Sign::Plus, Sign::Plus) => (
                BigInt::new(Sign::Plus, q_mag),
                BigInt::new(Sign::Plus, r_mag),
            ),
            (Sign::Minus, Sign::Minus) => (
                BigInt::new(Sign::Plus, q_mag),
                BigInt::new(Sign::Minus, r_mag),
            ),
            (Sign::Minus, Sign::Plus) => {
                if r_mag.is_zero() {
                    (BigInt::new(Sign::Minus, q_mag), BigInt::zero())
                } else {
                    (
                        BigInt::new(Sign::Minus, &q_mag + &BigUint::one()),
                        BigInt::new(Sign::Plus, &d.mag - &r_mag),
                    )
                }
            }
            (Sign::Plus, Sign::Minus) => {
                if r_mag.is_zero() {
                    (BigInt::new(Sign::Minus, q_mag), BigInt::zero())
                } else {
                    (
                        BigInt::new(Sign::Minus, &q_mag + &BigUint::one()),
                        BigInt::new(Sign::Minus, &d.mag - &r_mag),
                    )
                }
            }
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v < 0 {
            BigInt::new(Sign::Minus, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::new(Sign::Plus, BigUint::from(v as u64))
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        BigInt::from_biguint(v)
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match self.sign {
            _ if self.is_zero() => BigInt::zero(),
            Sign::Plus => BigInt::new(Sign::Minus, self.mag.clone()),
            Sign::Minus => BigInt::new(Sign::Plus, self.mag.clone()),
        }
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.sign == rhs.sign {
            BigInt::new(self.sign, &self.mag + &rhs.mag)
        } else {
            match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::new(self.sign, &self.mag - &rhs.mag),
                Ordering::Less => BigInt::new(rhs.sign, &rhs.mag - &self.mag),
            }
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::new(sign, &self.mag * &rhs.mag)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.mag.to_dec())
        } else {
            f.write_str(&self.mag.to_dec())
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_add_sub() {
        assert_eq!(&bi(5) + &bi(-3), bi(2));
        assert_eq!(&bi(-5) + &bi(3), bi(-2));
        assert_eq!(&bi(-5) + &bi(-3), bi(-8));
        assert_eq!(&bi(3) - &bi(5), bi(-2));
        assert_eq!(&bi(-3) - &bi(-3), BigInt::zero());
    }

    #[test]
    fn signed_mul() {
        assert_eq!(&bi(-4) * &bi(3), bi(-12));
        assert_eq!(&bi(-4) * &bi(-3), bi(12));
        assert_eq!(&bi(0) * &bi(-3), BigInt::zero());
        assert!(!(&bi(0) * &bi(-3)).is_negative(), "zero is canonical Plus");
    }

    #[test]
    fn mod_floor_negative() {
        let m = BigUint::from(7u64);
        assert_eq!(bi(-1).mod_floor(&m), BigUint::from(6u64));
        assert_eq!(bi(-7).mod_floor(&m), BigUint::zero());
        assert_eq!(bi(-15).mod_floor(&m), BigUint::from(6u64));
        assert_eq!(bi(10).mod_floor(&m), BigUint::from(3u64));
    }

    #[test]
    fn divrem_floor_signs() {
        // Floor semantics: -7 / 2 = -4 rem 1; 7 / -2 = -4 rem -1.
        for (a, d, q, r) in [
            (7i64, 2i64, 3i64, 1i64),
            (-7, 2, -4, 1),
            (7, -2, -4, -1),
            (-7, -2, 3, -1),
            (-6, 3, -2, 0),
        ] {
            let (qq, rr) = bi(a).divrem_floor(&bi(d));
            assert_eq!(qq, bi(q), "q for {a}/{d}");
            assert_eq!(rr, bi(r), "r for {a}/{d}");
        }
    }

    #[test]
    fn neg_zero_canonical() {
        let z = -&BigInt::zero();
        assert!(z.is_zero());
        assert!(!z.is_negative());
    }
}
