//! Addition and subtraction for [`BigUint`], plus the operator impls.
//!
//! Subtraction panics on underflow (unsigned type); use
//! [`BigUint::checked_sub`] or [`crate::BigInt`] when the sign is not
//! statically known.

use crate::BigUint;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// `a + b` into a fresh value.
pub(crate) fn add(a: &BigUint, b: &BigUint) -> BigUint {
    let (long, short) = if a.limbs.len() >= b.limbs.len() {
        (a, b)
    } else {
        (b, a)
    };
    let mut out = Vec::with_capacity(long.limbs.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.limbs.len() {
        let x = long.limbs[i];
        let y = short.limbs.get(i).copied().unwrap_or(0);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 | c2) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    BigUint::from_limbs(out)
}

/// `a += b` in place.
pub(crate) fn add_assign(a: &mut BigUint, b: &BigUint) {
    if a.limbs.len() < b.limbs.len() {
        a.limbs.resize(b.limbs.len(), 0);
    }
    let mut carry = 0u64;
    for i in 0..a.limbs.len() {
        let y = b.limbs.get(i).copied().unwrap_or(0);
        if y == 0 && carry == 0 && i >= b.limbs.len() {
            break;
        }
        let (s1, c1) = a.limbs[i].overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        a.limbs[i] = s2;
        carry = (c1 | c2) as u64;
    }
    if carry != 0 {
        a.limbs.push(carry);
    }
    a.debug_check();
}

/// `a - b`; returns `None` on underflow.
pub(crate) fn checked_sub(a: &BigUint, b: &BigUint) -> Option<BigUint> {
    if a < b {
        return None;
    }
    let mut out = Vec::with_capacity(a.limbs.len());
    let mut borrow = 0u64;
    for i in 0..a.limbs.len() {
        let y = b.limbs.get(i).copied().unwrap_or(0);
        let (d1, b1) = a.limbs[i].overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (b1 | b2) as u64;
    }
    debug_assert_eq!(borrow, 0);
    Some(BigUint::from_limbs(out))
}

impl BigUint {
    /// `self + other` by reference (no clone of either operand).
    #[inline]
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        add(self, other)
    }

    /// `self - other`, or `None` if the result would be negative.
    #[inline]
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        checked_sub(self, other)
    }

    /// `self - other` saturating at zero.
    #[inline]
    pub fn saturating_sub(&self, other: &BigUint) -> BigUint {
        checked_sub(self, other).unwrap_or_default()
    }

    /// `|self - other|`.
    pub fn abs_diff(&self, other: &BigUint) -> BigUint {
        if self >= other {
            checked_sub(self, other).expect("self >= other")
        } else {
            checked_sub(other, self).expect("other > self")
        }
    }

    /// Increment in place.
    pub fn incr(&mut self) {
        add_assign(self, &BigUint::one());
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        add(self, rhs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        add(&self, &rhs)
    }
}

impl Add<u64> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: u64) -> BigUint {
        add(self, &BigUint::from(rhs))
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        add_assign(self, rhs);
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// Panics on underflow.
    fn sub(self, rhs: &BigUint) -> BigUint {
        checked_sub(self, rhs).expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Sub<u64> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: u64) -> BigUint {
        self - &BigUint::from(rhs)
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = checked_sub(self, rhs).expect("BigUint subtraction underflow");
    }
}

// Mixed-ownership operator impls so call sites read naturally.
impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        add(&self, rhs)
    }
}

impl Add<BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        add(self, &rhs)
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        &self - rhs
    }
}

impl Sub<BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        self - &rhs
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn add_small() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        assert_eq!(&a + &b, BigUint::from(1u128 << 64));
    }

    #[test]
    fn add_asymmetric_lengths() {
        let a = BigUint::from(u128::MAX);
        let b = BigUint::from(1u64);
        let s = &a + &b;
        assert_eq!(s.limbs(), &[0, 0, 1]);
        assert_eq!(&b + &a, s);
    }

    #[test]
    fn add_zero_identity() {
        let a = BigUint::from(12345u64);
        assert_eq!(&a + &BigUint::zero(), a);
        assert_eq!(&BigUint::zero() + &a, a);
    }

    #[test]
    fn add_assign_carry_propagation() {
        let mut a = BigUint::from(u128::MAX);
        a += &BigUint::one();
        assert_eq!(a.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sub_basics() {
        let a = BigUint::from(1u128 << 64);
        let b = BigUint::one();
        assert_eq!(&a - &b, BigUint::from(u64::MAX));
        assert_eq!(&a - &a.clone(), BigUint::zero());
    }

    #[test]
    fn sub_underflow_is_none() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(6u64);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(a.saturating_sub(&b), BigUint::zero());
    }

    #[test]
    fn abs_diff_symmetric() {
        let a = BigUint::from(100u64);
        let b = BigUint::from(58u64);
        assert_eq!(a.abs_diff(&b), BigUint::from(42u64));
        assert_eq!(b.abs_diff(&a), BigUint::from(42u64));
    }

    #[test]
    fn incr_carries() {
        let mut a = BigUint::from(u64::MAX);
        a.incr();
        assert_eq!(a, BigUint::from(1u128 << 64));
    }

    #[test]
    fn add_u128_reference() {
        // Cross-check against native u128 arithmetic on values that fit.
        for (x, y) in [
            (0u128, 0u128),
            (1, u64::MAX as u128),
            (1 << 90, 1 << 90),
            (12345, 67890),
        ] {
            let s = BigUint::from(x) + BigUint::from(y);
            assert_eq!(s.to_u128(), Some(x + y));
        }
    }
}
