//! Modular arithmetic entry points on [`BigUint`]: `modpow` (Montgomery
//! for odd moduli, square-and-multiply otherwise), `modinv`, `modmul`,
//! and small helpers used pervasively by the crypto crates.

use crate::{ext_gcd, BigUint, Montgomery};

/// Plain square-and-multiply, used when the modulus is even (Montgomery
/// needs odd moduli). Exposed for the `ablation_bigint` bench.
pub fn modpow_plain(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "zero modulus");
    if m.is_one() {
        return BigUint::zero();
    }
    let mut acc = BigUint::one();
    let mut b = base % m;
    for i in 0..exp.bits() {
        if exp.bit(i) {
            acc = &(&acc * &b) % m;
        }
        if i + 1 < exp.bits() {
            b = &(&b * &b) % m;
        }
    }
    acc
}

impl BigUint {
    /// `self^exp mod m`. Dispatches to Montgomery for odd `m`.
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if m.is_odd() {
            Montgomery::new(m).modpow(self, exp)
        } else {
            modpow_plain(self, exp, m)
        }
    }

    /// `self * other mod m`.
    pub fn modmul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        &(self * other) % m
    }

    /// `self + other mod m`.
    pub fn modadd(&self, other: &BigUint, m: &BigUint) -> BigUint {
        &(self + other) % m
    }

    /// `self - other mod m` (wrapping into `[0, m)`).
    pub fn modsub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let a = self % m;
        let b = other % m;
        if a >= b {
            &a - &b
        } else {
            &(&a + m) - &b
        }
    }

    /// Multiplicative inverse mod `m`, or `None` if `gcd(self, m) != 1`.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self % m;
        let (g, x, _) = ext_gcd(&a, m);
        if !g.is_one() {
            return None;
        }
        Some(x.mod_floor(m))
    }

    /// `-self mod m`.
    pub fn modneg(&self, m: &BigUint) -> BigUint {
        let r = self % m;
        if r.is_zero() {
            r
        } else {
            m - &r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn modpow_odd_even_agree_with_naive() {
        for m in [97u64, 96, 1024, 1_000_000_007, 1 << 32] {
            let m = b(m);
            let base = b(123456789);
            let exp = b(987654);
            assert_eq!(
                base.modpow(&exp, &m),
                modpow_plain(&base, &exp, &m),
                "m = {m}"
            );
        }
    }

    #[test]
    fn modpow_known_value() {
        // 5^117 mod 19 = 1 (ord(5) mod 19 is 9; 117 = 13*9)
        assert_eq!(b(5).modpow(&b(117), &b(19)), b(1));
        // 2^10 mod 1000 = 24
        assert_eq!(b(2).modpow(&b(10), &b(1000)), b(24));
    }

    #[test]
    fn modpow_mod_one() {
        assert_eq!(b(7).modpow(&b(3), &b(1)), BigUint::zero());
    }

    #[test]
    fn modinv_basics() {
        assert_eq!(b(3).modinv(&b(7)), Some(b(5))); // 3*5 = 15 = 1 mod 7
        assert_eq!(b(2).modinv(&b(4)), None); // gcd 2
        assert_eq!(b(1).modinv(&b(97)), Some(b(1)));
        assert_eq!(b(0).modinv(&b(97)), None);
    }

    #[test]
    fn modinv_large_prime() {
        let p = BigUint::parse_dec("170141183460469231731687303715884105727").unwrap(); // 2^127-1, prime
        let a = BigUint::parse_dec("123456789123456789").unwrap();
        let inv = a.modinv(&p).unwrap();
        assert_eq!(a.modmul(&inv, &p), BigUint::one());
    }

    #[test]
    fn modsub_wraps() {
        assert_eq!(b(3).modsub(&b(5), &b(7)), b(5));
        assert_eq!(b(5).modsub(&b(3), &b(7)), b(2));
        assert_eq!(b(5).modsub(&b(5), &b(7)), BigUint::zero());
        // Operands larger than the modulus are reduced first.
        assert_eq!(b(10).modsub(&b(20), &b(7)), b(4)); // 3 - 6 mod 7 = 4
    }

    #[test]
    fn modneg() {
        assert_eq!(b(3).modneg(&b(7)), b(4));
        assert_eq!(b(0).modneg(&b(7)), b(0));
        assert_eq!(b(14).modneg(&b(7)), b(0));
    }

    #[test]
    fn fermat_multilimb() {
        // 2^255-19 is prime; check a^(p-1) = 1 through the dispatching modpow.
        let p = (BigUint::one() << 255usize) - b(19);
        let a = BigUint::parse_hex("abcdef0123456789abcdef0123456789").unwrap();
        assert_eq!(a.modpow(&(&p - 1u64), &p), BigUint::one());
    }
}
