//! Multiplication: schoolbook for small operands, Karatsuba above a
//! crossover. The crossover (in limbs) was tuned with
//! `ablation_bigint` in `ppms-bench`; 32 limbs (2048 bits) is a good
//! default on x86-64.

use crate::BigUint;
use std::ops::{Mul, MulAssign};

/// Operand size (in limbs) above which Karatsuba beats schoolbook.
pub(crate) const KARATSUBA_THRESHOLD: usize = 32;

/// Schoolbook `a * b` over raw limb slices.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u128 + x as u128 * y as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

/// Adds `b` into `acc` starting at limb offset `shift`.
fn add_shifted(acc: &mut Vec<u64>, b: &[u64], shift: usize) {
    if acc.len() < shift + b.len() + 1 {
        acc.resize(shift + b.len() + 1, 0);
    }
    let mut carry = 0u64;
    for (j, &y) in b.iter().enumerate() {
        let (s1, c1) = acc[shift + j].overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        acc[shift + j] = s2;
        carry = (c1 | c2) as u64;
    }
    let mut k = shift + b.len();
    while carry != 0 {
        if k == acc.len() {
            acc.push(0);
        }
        let (s, c) = acc[k].overflowing_add(carry);
        acc[k] = s;
        carry = c as u64;
        k += 1;
    }
}

/// Subtracts `b` from `acc` in place; `acc >= b` must hold.
#[allow(clippy::needless_range_loop)] // dual-slice indexing with early exit
fn sub_in_place(acc: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..acc.len() {
        let y = b.get(i).copied().unwrap_or(0);
        if y == 0 && borrow == 0 && i >= b.len() {
            break;
        }
        let (d1, b1) = acc[i].overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        acc[i] = d2;
        borrow = (b1 | b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "sub_in_place underflow");
}

fn normalized(mut v: Vec<u64>) -> Vec<u64> {
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// Karatsuba `a * b` over raw limb slices; recurses until the
/// schoolbook threshold.
fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));
    let a0 = normalized(a0.to_vec());
    let b0 = normalized(b0.to_vec());

    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2
    let z0 = mul_karatsuba(&a0, &b0);
    let z2 = mul_karatsuba(a1, b1);
    let mut asum = a0.clone();
    add_shifted(&mut asum, a1, 0);
    let asum = normalized(asum);
    let mut bsum = b0.clone();
    add_shifted(&mut bsum, b1, 0);
    let bsum = normalized(bsum);
    let mut z1 = mul_karatsuba(&asum, &bsum);
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);
    let z1 = normalized(z1);

    let mut out = z0;
    add_shifted(&mut out, &z1, half);
    add_shifted(&mut out, &z2, 2 * half);
    out
}

/// Multiplies two `BigUint`s, dispatching on operand size.
pub(crate) fn mul(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let limbs = if a.limbs.len().min(b.limbs.len()) >= KARATSUBA_THRESHOLD {
        mul_karatsuba(&a.limbs, &b.limbs)
    } else {
        mul_schoolbook(&a.limbs, &b.limbs)
    };
    BigUint::from_limbs(limbs)
}

/// Schoolbook multiply, exposed for the Karatsuba-threshold ablation bench.
pub fn mul_schoolbook_pub(a: &BigUint, b: &BigUint) -> BigUint {
    BigUint::from_limbs(mul_schoolbook(&a.limbs, &b.limbs))
}

/// Karatsuba multiply (threshold 2), exposed for the ablation bench.
pub fn mul_karatsuba_pub(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    BigUint::from_limbs(mul_karatsuba(&a.limbs, &b.limbs))
}

impl BigUint {
    /// `self * other` by reference.
    #[inline]
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        mul(self, other)
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        mul(self, rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        mul(&self, &rhs)
    }
}

impl Mul<u64> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: u64) -> BigUint {
        mul(self, &BigUint::from(rhs))
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = mul(self, rhs);
    }
}

impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        mul(&self, rhs)
    }
}

impl Mul<BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        mul(self, &rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    #[test]
    fn mul_by_zero_and_one() {
        let a = BigUint::from(123456789u64);
        assert_eq!(&a * &BigUint::zero(), BigUint::zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn mul_u128_reference() {
        for (x, y) in [
            (3u128, 5u128),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 63, 1 << 63),
            (987654321, 123456789),
        ] {
            let p = BigUint::from(x) * BigUint::from(y);
            assert_eq!(p.to_u128(), Some(x * y), "{x} * {y}");
        }
    }

    #[test]
    fn mul_carries_across_limbs() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let a = BigUint::from(u128::MAX);
        let sq = a.square();
        let expected = (BigUint::one() << 256usize) - (BigUint::one() << 129usize) + BigUint::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Deterministic pseudo-random operands big enough to recurse.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in [KARATSUBA_THRESHOLD, KARATSUBA_THRESHOLD * 2 + 3, 100] {
            let a = BigUint::from_limbs((0..len).map(|_| next()).collect());
            let b = BigUint::from_limbs((0..len + 7).map(|_| next()).collect());
            assert_eq!(
                mul_karatsuba_pub(&a, &b),
                mul_schoolbook_pub(&a, &b),
                "len {len}"
            );
        }
    }

    #[test]
    fn karatsuba_asymmetric_operands() {
        let a = BigUint::from_limbs(vec![u64::MAX; 80]);
        let b = BigUint::from_limbs(vec![u64::MAX; 33]);
        assert_eq!(mul_karatsuba_pub(&a, &b), mul_schoolbook_pub(&a, &b));
    }

    #[test]
    fn mul_commutative_associative() {
        let a = BigUint::from(0xDEADBEEFu64);
        let b = BigUint::from(0xC0FFEEu64);
        let c = BigUint::from(0x1234_5678_9ABCu64);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }
}
