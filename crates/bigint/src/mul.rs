//! Multiplication and squaring: schoolbook for small operands,
//! Karatsuba above a crossover. The crossovers (in limbs) were tuned
//! with `ablation_bigint` in `ppms-bench`.
//!
//! Karatsuba runs over a caller-allocated workspace: one scratch
//! buffer sized up front covers the whole recursion tree, so a
//! multiply performs two allocations (output + scratch) total instead
//! of four fresh `Vec`s per recursion level. The squaring kernel
//! halves the partial products of the schoolbook inner loop
//! (cross-terms computed once and doubled by a single 1-bit shift)
//! and keeps the all-squares recursion of Karatsuba, which is what
//! the Montgomery pow ladder spends most of its time in.

use crate::BigUint;
use std::ops::{Mul, MulAssign};

/// Operand size (in limbs) above which workspace Karatsuba beats
/// schoolbook for general products. Measured with the
/// `ablation_karatsuba_threshold` rows of `ablation_bigint`: forced
/// Karatsuba still trails schoolbook at 48 limbs (~2.9µs vs ~2.5µs)
/// and wins at 64 (~4.1µs vs ~4.5µs).
pub(crate) const KARATSUBA_THRESHOLD: usize = 64;

/// Operand size (in limbs) above which Karatsuba squaring beats the
/// doubled-cross-term schoolbook square. The schoolbook square does
/// roughly half the work of a schoolbook multiply, so its crossover
/// would sit even higher — but the Karatsuba recursion halves into
/// the same cheap squares, and the measured curves cross at the same
/// 64 limbs as the multiply (48: ~2.0µs vs ~1.5µs; 64: ~2.4µs vs
/// ~2.6µs).
pub(crate) const KARATSUBA_SQR_THRESHOLD: usize = 64;

/// Schoolbook `a * b` over raw limb slices.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    mul_schoolbook_into(a, b, &mut out);
    out
}

/// Schoolbook `a * b` into a zeroed output slice of exactly
/// `a.len() + b.len()` limbs.
fn mul_schoolbook_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u128 + x as u128 * y as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
}

/// Schoolbook `a²` into a zeroed output slice of exactly `2·a.len()`
/// limbs: cross-terms `aᵢ·aⱼ (i < j)` accumulated once and doubled by
/// a 1-bit shift, then the diagonal squares added — about half the
/// 64×64 partial products of `mul_schoolbook_into(a, a, ..)`.
fn sqr_schoolbook_into(a: &[u64], out: &mut [u64]) {
    let n = a.len();
    debug_assert_eq!(out.len(), 2 * n);
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in a.iter().enumerate().skip(i + 1) {
            let t = out[i + j] as u128 + x as u128 * y as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + n;
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    // Double the cross-term sum: 2·Σ < a², so the shifted-out bit of
    // the top limb is always zero.
    let mut top = 0u64;
    for limb in out.iter_mut() {
        let next = *limb >> 63;
        *limb = (*limb << 1) | top;
        top = next;
    }
    debug_assert_eq!(top, 0, "doubled cross terms overflowed");
    // Add the diagonal squares at even limb positions.
    let mut carry = 0u128;
    for (i, &x) in a.iter().enumerate() {
        let lo = out[2 * i] as u128 + x as u128 * x as u128 + carry;
        out[2 * i] = lo as u64;
        let hi = out[2 * i + 1] as u128 + (lo >> 64);
        out[2 * i + 1] = hi as u64;
        carry = hi >> 64;
    }
    debug_assert_eq!(carry, 0, "square overflowed its 2n limbs");
}

/// Adds `b` into `acc` starting at limb offset `shift`.
fn add_shifted(acc: &mut Vec<u64>, b: &[u64], shift: usize) {
    if acc.len() < shift + b.len() + 1 {
        acc.resize(shift + b.len() + 1, 0);
    }
    let mut carry = 0u64;
    for (j, &y) in b.iter().enumerate() {
        let (s1, c1) = acc[shift + j].overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        acc[shift + j] = s2;
        carry = (c1 | c2) as u64;
    }
    let mut k = shift + b.len();
    while carry != 0 {
        if k == acc.len() {
            acc.push(0);
        }
        let (s, c) = acc[k].overflowing_add(carry);
        acc[k] = s;
        carry = c as u64;
        k += 1;
    }
}

/// Adds `b` into the fixed-size slice `acc` at limb offset `shift`.
/// The caller guarantees the mathematical sum fits in `acc` (true for
/// every partial sum of a product written into an `a+b`-limb output).
fn add_shifted_slice(acc: &mut [u64], b: &[u64], shift: usize) {
    let mut carry = 0u64;
    for (j, &y) in b.iter().enumerate() {
        let (s1, c1) = acc[shift + j].overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        acc[shift + j] = s2;
        carry = (c1 | c2) as u64;
    }
    let mut k = shift + b.len();
    while carry != 0 {
        let (s, c) = acc[k].overflowing_add(carry);
        acc[k] = s;
        carry = c as u64;
        k += 1;
    }
}

/// Subtracts `b` from `acc` in place; `acc >= b` must hold.
#[allow(clippy::needless_range_loop)] // dual-slice indexing with early exit
fn sub_in_place(acc: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..acc.len() {
        let y = b.get(i).copied().unwrap_or(0);
        if y == 0 && borrow == 0 && i >= b.len() {
            break;
        }
        let (d1, b1) = acc[i].overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        acc[i] = d2;
        borrow = (b1 | b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "sub_in_place underflow");
}

fn normalized(mut v: Vec<u64>) -> Vec<u64> {
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// View of a limb slice with trailing zero limbs dropped — the slice
/// analogue of [`normalized`], allocation-free.
fn trim(mut s: &[u64]) -> &[u64] {
    while s.last() == Some(&0) {
        s = &s[..s.len() - 1];
    }
    s
}

/// Writes `a + b` into `out` (`out.len() >= max(a,b) + 1`) and returns
/// the trimmed length of the sum.
fn add_into(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
    let n = a.len().max(b.len());
    let mut carry = 0u64;
    for (i, slot) in out.iter_mut().enumerate().take(n) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        *slot = s2;
        carry = (c1 | c2) as u64;
    }
    out[n] = carry;
    let mut len = n + 1;
    while len > 0 && out[len - 1] == 0 {
        len -= 1;
    }
    len
}

/// Scratch limbs one whole Karatsuba recursion over `n`-limb operands
/// needs: per level two sum buffers plus the `z1` product, recursing
/// on `half + 1` limbs.
fn ws_len(mut n: usize, threshold: usize) -> usize {
    let mut total = 0;
    while n >= threshold.max(2) {
        let half = n.div_ceil(2);
        total += 4 * (half + 1); // asum + bsum + z1
        n = half + 1;
    }
    total
}

/// Workspace Karatsuba `a * b`: writes the product into the zeroed
/// prefix of `out` and uses `ws` for every intermediate, allocating
/// nothing. `out.len()` must be at least the trimmed `a.len() +
/// b.len()`; `ws` must satisfy [`ws_len`].
fn kara_mul_rec(a: &[u64], b: &[u64], out: &mut [u64], ws: &mut [u64]) {
    let a = trim(a);
    let b = trim(b);
    if a.is_empty() || b.is_empty() {
        return;
    }
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        mul_schoolbook_into(a, b, &mut out[..a.len() + b.len()]);
        return;
    }
    let half = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));

    // z0 = a0·b0 sits in out[..2·half]; z2 = a1·b1 in out[2·half..].
    // The regions are disjoint, so both recurse directly into `out`.
    kara_mul_rec(a0, b0, &mut out[..a0.len() + b0.len()], ws);
    if !a1.is_empty() && !b1.is_empty() {
        let hi = 2 * half;
        kara_mul_rec(a1, b1, &mut out[hi..hi + a1.len() + b1.len()], ws);
    }

    // z1 = (a0+a1)(b0+b1) − z0 − z2, built in the workspace.
    let (asum_buf, rest) = ws.split_at_mut(half + 1);
    let (bsum_buf, rest) = rest.split_at_mut(half + 1);
    let alen = add_into(a0, a1, asum_buf);
    let blen = add_into(b0, b1, bsum_buf);
    if alen == 0 || blen == 0 {
        return; // a or b was all zeros
    }
    let (z1_buf, ws_rest) = rest.split_at_mut(alen + blen);
    z1_buf.fill(0);
    kara_mul_rec(&asum_buf[..alen], &bsum_buf[..blen], z1_buf, ws_rest);
    sub_in_place(z1_buf, trim(&out[..(2 * half).min(out.len())]));
    if !a1.is_empty() && !b1.is_empty() {
        sub_in_place(z1_buf, trim(&out[2 * half..]));
    }
    add_shifted_slice(out, trim(z1_buf), half);
}

/// Workspace Karatsuba `a²`: the three recursive products are all
/// squares, so the halved-partial-product base case applies at every
/// level of the tree.
fn kara_sqr_rec(a: &[u64], out: &mut [u64], ws: &mut [u64]) {
    let a = trim(a);
    if a.is_empty() {
        return;
    }
    if a.len() < KARATSUBA_SQR_THRESHOLD {
        sqr_schoolbook_into(a, &mut out[..2 * a.len()]);
        return;
    }
    let half = a.len().div_ceil(2);
    let (a0, a1) = a.split_at(half);
    kara_sqr_rec(a0, &mut out[..2 * a0.len()], ws);
    let hi = 2 * half;
    kara_sqr_rec(a1, &mut out[hi..hi + 2 * a1.len()], ws);

    let (asum_buf, rest) = ws.split_at_mut(half + 1);
    let alen = add_into(a0, a1, asum_buf);
    if alen == 0 {
        return;
    }
    let (z1_buf, ws_rest) = rest.split_at_mut(2 * alen);
    z1_buf.fill(0);
    kara_sqr_rec(&asum_buf[..alen], z1_buf, ws_rest);
    sub_in_place(z1_buf, trim(&out[..(2 * half).min(out.len())]));
    sub_in_place(z1_buf, trim(&out[2 * half..]));
    add_shifted_slice(out, trim(z1_buf), half);
}

/// Karatsuba `a * b` through the one-shot workspace: two allocations
/// total (output + scratch) for the whole recursion tree.
fn mul_karatsuba_ws(a: &[u64], b: &[u64]) -> Vec<u64> {
    let a = trim(a);
    let b = trim(b);
    let mut out = vec![0u64; a.len() + b.len()];
    let mut ws = vec![0u64; ws_len(a.len().max(b.len()), KARATSUBA_THRESHOLD)];
    kara_mul_rec(a, b, &mut out, &mut ws);
    out
}

/// `a²` over raw limbs, dispatching on size; returns `2·a.len()`
/// limbs before normalization (the fixed width Montgomery's separate
/// reduction step expects).
pub(crate) fn sqr_limbs(a: &[u64]) -> Vec<u64> {
    let width = 2 * a.len();
    let at = trim(a);
    let mut out = vec![0u64; width];
    if at.len() < KARATSUBA_SQR_THRESHOLD {
        sqr_schoolbook_into(at, &mut out[..2 * at.len()]);
    } else {
        let mut ws = vec![0u64; ws_len(at.len(), KARATSUBA_SQR_THRESHOLD)];
        kara_sqr_rec(at, &mut out[..2 * at.len()], &mut ws);
    }
    out
}

/// `a²` as a `BigUint`, through the dedicated squaring kernel.
pub(crate) fn sqr(a: &BigUint) -> BigUint {
    if a.is_zero() {
        return BigUint::zero();
    }
    BigUint::from_limbs(sqr_limbs(&a.limbs))
}

/// Allocating Karatsuba `a * b`; kept as the pre-workspace reference
/// the ablation bench compares against.
fn mul_karatsuba_alloc(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));
    let a0 = normalized(a0.to_vec());
    let b0 = normalized(b0.to_vec());

    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2
    let z0 = mul_karatsuba_alloc(&a0, &b0);
    let z2 = mul_karatsuba_alloc(a1, b1);
    let mut asum = a0.clone();
    add_shifted(&mut asum, a1, 0);
    let asum = normalized(asum);
    let mut bsum = b0.clone();
    add_shifted(&mut bsum, b1, 0);
    let bsum = normalized(bsum);
    let mut z1 = mul_karatsuba_alloc(&asum, &bsum);
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);
    let z1 = normalized(z1);

    let mut out = z0;
    add_shifted(&mut out, &z1, half);
    add_shifted(&mut out, &z2, 2 * half);
    out
}

/// Multiplies two `BigUint`s, dispatching on operand size.
pub(crate) fn mul(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let limbs = if a.limbs.len().min(b.limbs.len()) >= KARATSUBA_THRESHOLD {
        mul_karatsuba_ws(&a.limbs, &b.limbs)
    } else {
        mul_schoolbook(&a.limbs, &b.limbs)
    };
    BigUint::from_limbs(limbs)
}

/// Schoolbook multiply, exposed for the Karatsuba-threshold ablation bench.
pub fn mul_schoolbook_pub(a: &BigUint, b: &BigUint) -> BigUint {
    BigUint::from_limbs(mul_schoolbook(&a.limbs, &b.limbs))
}

/// Allocating Karatsuba multiply, exposed for the ablation bench.
pub fn mul_karatsuba_pub(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    BigUint::from_limbs(mul_karatsuba_alloc(&a.limbs, &b.limbs))
}

/// Workspace Karatsuba multiply, exposed for the ablation bench.
pub fn mul_karatsuba_ws_pub(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    BigUint::from_limbs(mul_karatsuba_ws(&a.limbs, &b.limbs))
}

/// Schoolbook square (doubled cross terms), exposed for the ablation
/// bench.
pub fn sqr_schoolbook_pub(a: &BigUint) -> BigUint {
    if a.is_zero() {
        return BigUint::zero();
    }
    let mut out = vec![0u64; 2 * a.limbs.len()];
    sqr_schoolbook_into(&a.limbs, &mut out);
    BigUint::from_limbs(out)
}

/// Karatsuba square (threshold-free recursion entry), exposed for the
/// ablation bench.
pub fn sqr_karatsuba_pub(a: &BigUint) -> BigUint {
    if a.is_zero() {
        return BigUint::zero();
    }
    let n = a.limbs.len();
    let mut out = vec![0u64; 2 * n];
    let mut ws = vec![0u64; ws_len(n, KARATSUBA_SQR_THRESHOLD)];
    kara_sqr_rec(&a.limbs, &mut out, &mut ws);
    BigUint::from_limbs(out)
}

impl BigUint {
    /// `self * other` by reference.
    #[inline]
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        mul(self, other)
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        mul(self, rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        mul(&self, &rhs)
    }
}

impl Mul<u64> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: u64) -> BigUint {
        mul(self, &BigUint::from(rhs))
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = mul(self, rhs);
    }
}

impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        mul(&self, rhs)
    }
}

impl Mul<BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        mul(self, &rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    fn xorshift_limbs(seed: u64, len: usize) -> Vec<u64> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = BigUint::from(123456789u64);
        assert_eq!(&a * &BigUint::zero(), BigUint::zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn mul_u128_reference() {
        for (x, y) in [
            (3u128, 5u128),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 63, 1 << 63),
            (987654321, 123456789),
        ] {
            let p = BigUint::from(x) * BigUint::from(y);
            assert_eq!(p.to_u128(), Some(x * y), "{x} * {y}");
        }
    }

    #[test]
    fn mul_carries_across_limbs() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let a = BigUint::from(u128::MAX);
        let sq = a.square();
        let expected = (BigUint::one() << 256usize) - (BigUint::one() << 129usize) + BigUint::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Deterministic pseudo-random operands big enough to recurse.
        for len in [KARATSUBA_THRESHOLD, KARATSUBA_THRESHOLD * 2 + 3, 100] {
            let a = BigUint::from_limbs(xorshift_limbs(0x9E3779B97F4A7C15, len));
            let b = BigUint::from_limbs(xorshift_limbs(0xD1B54A32D192ED03, len + 7));
            let expect = mul_schoolbook_pub(&a, &b);
            assert_eq!(mul_karatsuba_pub(&a, &b), expect, "alloc len {len}");
            assert_eq!(mul_karatsuba_ws_pub(&a, &b), expect, "ws len {len}");
        }
    }

    #[test]
    fn karatsuba_asymmetric_operands() {
        let a = BigUint::from_limbs(vec![u64::MAX; 80]);
        let b = BigUint::from_limbs(vec![u64::MAX; 33]);
        let expect = mul_schoolbook_pub(&a, &b);
        assert_eq!(mul_karatsuba_pub(&a, &b), expect);
        assert_eq!(mul_karatsuba_ws_pub(&a, &b), expect);
    }

    #[test]
    fn ws_karatsuba_internal_zero_blocks() {
        // Operands with zero-filled halves exercise the trimmed-slice
        // paths (empty z2, short sums) of the workspace recursion.
        for (lo_zero, hi_zero) in [(true, false), (false, true), (true, true)] {
            let len = KARATSUBA_THRESHOLD * 2 + 5;
            let mut limbs = xorshift_limbs(0xABCDEF12345, len);
            if lo_zero {
                limbs[..len / 2].fill(0);
            }
            if hi_zero {
                limbs[len / 2..len - 1].fill(0);
            }
            let a = BigUint::from_limbs(limbs);
            let b = BigUint::from_limbs(xorshift_limbs(0x5DEECE66D, len + 3));
            assert_eq!(
                mul_karatsuba_ws_pub(&a, &b),
                mul_schoolbook_pub(&a, &b),
                "lo_zero={lo_zero} hi_zero={hi_zero}"
            );
        }
    }

    #[test]
    fn square_matches_mul_small_and_large() {
        for len in [
            1,
            3,
            17,
            KARATSUBA_SQR_THRESHOLD,
            KARATSUBA_SQR_THRESHOLD * 2 + 9,
        ] {
            let a = BigUint::from_limbs(xorshift_limbs(0xBADC0FFEE ^ len as u64, len));
            let expect = mul_schoolbook_pub(&a, &a);
            assert_eq!(a.square(), expect, "square dispatch len {len}");
            assert_eq!(sqr_schoolbook_pub(&a), expect, "schoolbook sqr len {len}");
            assert_eq!(sqr_karatsuba_pub(&a), expect, "karatsuba sqr len {len}");
        }
        assert_eq!(BigUint::zero().square(), BigUint::zero());
        assert_eq!(BigUint::one().square(), BigUint::one());
    }

    #[test]
    fn sqr_limbs_keeps_double_width() {
        // Montgomery's separate reduction step wants exactly 2k limbs
        // even when the top limbs of the square are zero.
        let a = vec![3u64, 0, 0, 0]; // 4 limbs, value 3
        let sq = sqr_limbs(&a);
        assert_eq!(sq.len(), 8);
        assert_eq!(sq[0], 9);
        assert!(sq[1..].iter().all(|&l| l == 0));
    }

    #[test]
    fn mul_commutative_associative() {
        let a = BigUint::from(0xDEADBEEFu64);
        let b = BigUint::from(0xC0FFEEu64);
        let c = BigUint::from(0x1234_5678_9ABCu64);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }
}
