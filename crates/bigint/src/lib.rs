//! # ppms-bigint
//!
//! Arbitrary-precision integer arithmetic for the PPMS reproduction.
//!
//! The PPMS paper's two market mechanisms are built entirely out of
//! public-key cryptography over large integers (RSA, Schnorr groups,
//! a group tower over a Cunningham chain, and a Type-A pairing). This
//! crate provides the number substrate from scratch — no external
//! bignum crates — with the performance features those workloads need:
//!
//! * [`BigUint`]: little-endian `u64`-limb unsigned integers, always
//!   normalized (no trailing zero limbs),
//! * schoolbook and Karatsuba multiplication with an empirically chosen
//!   crossover,
//! * Knuth Algorithm D division,
//! * Montgomery modular exponentiation (odd moduli) with a plain
//!   square-and-multiply fallback,
//! * [`FpMont`]: the allocation-free fixed-width core — the same
//!   Montgomery kernels monomorphized over `const LIMBS` widths
//!   (stack-resident residues, thread-local scratch arena) for the
//!   protocol moduli, proven allocation-free by a counting-allocator
//!   test,
//! * [`ModRing`]: a constructed-once per-modulus context unifying
//!   the fixed-width, Montgomery and Barrett backends behind one API,
//!   with cached fixed-base window tables, Shamir simultaneous
//!   multi-exponentiation, and RSA-CRT ([`RsaCrt`]) — the layer every
//!   crate above exponentiates through,
//! * extended Euclid / modular inverse, Jacobi symbols,
//! * random generation, and decimal/hex/byte conversions.
//!
//! [`BigInt`] is a thin signed wrapper used where subtraction may go
//! negative (extended gcd, ZK responses).
//!
//! ## Example
//!
//! ```
//! use ppms_bigint::BigUint;
//!
//! let a = BigUint::from(123456789u64);
//! let b = BigUint::parse_dec("987654321987654321").unwrap();
//! let m = BigUint::from(1000000007u64);
//! let c = a.modpow(&b, &m);
//! assert_eq!(c.to_dec(), "689051811");
//! ```

mod arith;
mod barrett;
mod bigint;
mod biguint;
mod convert;
mod div;
mod fixed;
mod gcd;
mod modular;
mod montgomery;
mod mul;
mod random;
mod ring;
mod shift;

pub use crate::barrett::Barrett;
pub use crate::bigint::{BigInt, Sign};
pub use crate::biguint::BigUint;
pub use crate::convert::ParseBigUintError;
pub use crate::fixed::FpMont;
pub use crate::gcd::{ext_gcd, gcd, jacobi, lcm};
pub use crate::modular::modpow_plain;
pub use crate::montgomery::Montgomery;
pub use crate::mul::{
    mul_karatsuba_pub, mul_karatsuba_ws_pub, mul_schoolbook_pub, sqr_karatsuba_pub,
    sqr_schoolbook_pub,
};
pub use crate::random::{random_below, random_bits, random_odd_bits, random_unit_range};
pub use crate::ring::{ModRing, RsaCrt};
