//! Bit shifts for [`BigUint`].

use crate::BigUint;
use std::ops::{Shl, ShlAssign, Shr, ShrAssign};

pub(crate) fn shl(a: &BigUint, n: usize) -> BigUint {
    if a.is_zero() || n == 0 {
        return if n == 0 { a.clone() } else { BigUint::zero() };
    }
    let (limb_shift, bit_shift) = (n / 64, n % 64);
    let mut out = vec![0u64; a.limbs.len() + limb_shift + 1];
    for (i, &l) in a.limbs.iter().enumerate() {
        if bit_shift == 0 {
            out[i + limb_shift] = l;
        } else {
            out[i + limb_shift] |= l << bit_shift;
            out[i + limb_shift + 1] |= l >> (64 - bit_shift);
        }
    }
    BigUint::from_limbs(out)
}

pub(crate) fn shr(a: &BigUint, n: usize) -> BigUint {
    let (limb_shift, bit_shift) = (n / 64, n % 64);
    if limb_shift >= a.limbs.len() {
        return BigUint::zero();
    }
    let mut out = Vec::with_capacity(a.limbs.len() - limb_shift);
    for i in limb_shift..a.limbs.len() {
        let mut l = a.limbs[i] >> bit_shift;
        if bit_shift != 0 {
            if let Some(&hi) = a.limbs.get(i + 1) {
                l |= hi << (64 - bit_shift);
            }
        }
        out.push(l);
    }
    BigUint::from_limbs(out)
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, n: usize) -> BigUint {
        shl(&self, n)
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, n: usize) -> BigUint {
        shl(self, n)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, n: usize) -> BigUint {
        shr(&self, n)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, n: usize) -> BigUint {
        shr(self, n)
    }
}

impl ShlAssign<usize> for BigUint {
    fn shl_assign(&mut self, n: usize) {
        *self = shl(self, n);
    }
}

impl ShrAssign<usize> for BigUint {
    fn shr_assign(&mut self, n: usize) {
        *self = shr(self, n);
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn shl_basic() {
        assert_eq!(BigUint::one() << 0usize, BigUint::one());
        assert_eq!(BigUint::one() << 1usize, BigUint::two());
        assert_eq!(BigUint::one() << 64usize, BigUint::from(1u128 << 64));
        assert_eq!((BigUint::one() << 200usize).bits(), 201);
    }

    #[test]
    fn shr_basic() {
        let a = BigUint::one() << 200usize;
        assert_eq!(&a >> 200usize, BigUint::one());
        assert_eq!(&a >> 201usize, BigUint::zero());
        assert_eq!(&a >> 0usize, a);
    }

    #[test]
    fn shl_shr_roundtrip() {
        let a = BigUint::from(0xDEAD_BEEF_CAFE_BABEu64);
        for n in [1usize, 13, 63, 64, 65, 129] {
            assert_eq!(&(&a << n) >> n, a, "shift {n}");
        }
    }

    #[test]
    fn shr_discards_low_bits() {
        let a = BigUint::from(0b1011u64);
        assert_eq!(&a >> 1usize, BigUint::from(0b101u64));
        assert_eq!(&a >> 3usize, BigUint::one());
    }

    #[test]
    fn shl_zero_value() {
        assert_eq!(BigUint::zero() << 100usize, BigUint::zero());
        assert_eq!(BigUint::zero() >> 5usize, BigUint::zero());
    }

    #[test]
    fn shl_matches_mul_by_power_of_two() {
        let a = BigUint::from(987654321u64);
        assert_eq!(&a << 5usize, &a * 32u64);
        assert_eq!(&a << 64usize, &a * &(BigUint::one() << 64usize));
    }
}
