//! `ModRing`: a constructed-once modular-arithmetic context that every
//! exponentiation in the workspace goes through.
//!
//! Before this module each call-site rebuilt a [`Montgomery`] context
//! (or fell back to plain square-and-multiply) on every `modpow`,
//! re-deriving `n' = -n^{-1} mod 2^64` and `R^2 mod n` each time. A
//! `ModRing` owns that state once per modulus and layers three
//! accelerations on top:
//!
//! * **fixed-base windows** ([`ModRing::pow_fixed`]): k-ary tables
//!   (`w = 4`) of `base^(d·16^j)` built lazily per *registered* base and
//!   cached behind a `parking_lot::RwLock`, turning a full
//!   square-and-multiply into ~`bits/4` multiplications with zero
//!   squarings,
//! * **simultaneous multi-exponentiation** ([`ModRing::multi_pow`]):
//!   Shamir's trick with a subset-product table, covering the
//!   `g^a · h^b` shape that dominates Pedersen commitments, CL
//!   signatures and the representation/OR ZK proofs,
//! * **RSA-CRT** ([`ModRing::pow_crt`] via [`RsaCrt`]): secret-key
//!   exponentiations split over the prime factors with Garner
//!   recombination, roughly 4× cheaper than a full-width `pow`.
//!
//! Odd moduli use the Montgomery backend; even moduli (not hit by the
//! protocols, but supported so the ring is total) use Barrett. Odd
//! moduli whose width matches a monomorphized [`FpMont`] instantiation
//! (the 1024/2048-bit protocol moduli, their CRT halves, and the small
//! fixture-tower widths) additionally carry a **fixed-width backend**:
//! every hot operation — `pow`, `mul`, `multi_pow`, `multi_pow_n`, the
//! fixed-base window tables — routes through stack-resident
//! allocation-free kernels, and the heap-`Vec` path remains only for
//! setup-time odd sizes (and stays reachable through
//! [`ModRing::pow_dynamic`] / [`ModRing::multi_pow_n_dynamic`] for the
//! equivalence tests and the ablation bench).
//!
//! Clones of a `ModRing` *share* the fixed-base table cache, so cloning
//! parameter sets across worker threads — as the threaded market in
//! `ppms-core` does — amortizes precomputation instead of repeating it.

use crate::fixed::{digit_at, pippenger_window, FpMont, WINDOW_BITS, WINDOW_SPAN};
use crate::{Barrett, BigUint, Montgomery};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Maximum number of bases `multi_pow` accepts (subset table is `2^n`).
const MULTI_POW_MAX: usize = 6;

#[derive(Clone, Debug)]
enum Backend {
    Mont(Montgomery),
    Barrett(Barrett),
}

/// The monomorphized fixed-width instantiations. Widths are chosen for
/// the moduli the protocols actually exercise: 16/32 limbs for the
/// 1024/2048-bit RSA and group moduli, 8 for their CRT halves and the
/// 512-bit bench modulus, 4 for 256-bit CRT halves of test keys, and
/// 2 for the fixture-tower groups the test suite lives in. Any other
/// width keeps the dynamic `Vec<u64>` backend.
// The enum lives once per ModRing; keeping the widest context inline
// (rather than boxed) spares every kernel dispatch a pointer chase.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum Fixed {
    L2(FpMont<2>),
    L4(FpMont<4>),
    L8(FpMont<8>),
    L16(FpMont<16>),
    L32(FpMont<32>),
}

/// Dispatches `$body` over whichever `FpMont<LIMBS>` instantiation the
/// ring carries, binding it to `$fp`. Each arm monomorphizes `$body`
/// at its concrete width.
macro_rules! with_fp {
    ($fixed:expr, $fp:ident => $body:expr) => {
        match $fixed {
            Fixed::L2($fp) => $body,
            Fixed::L4($fp) => $body,
            Fixed::L8($fp) => $body,
            Fixed::L16($fp) => $body,
            Fixed::L32($fp) => $body,
        }
    };
}

impl Fixed {
    /// Picks the instantiation matching the modulus width, if any.
    fn for_modulus(n: &BigUint) -> Option<Fixed> {
        if !n.is_odd() {
            return None;
        }
        match n.limbs().len() {
            2 => FpMont::<2>::new(n).map(Fixed::L2),
            4 => FpMont::<4>::new(n).map(Fixed::L4),
            8 => FpMont::<8>::new(n).map(Fixed::L8),
            16 => FpMont::<16>::new(n).map(Fixed::L16),
            32 => FpMont::<32>::new(n).map(Fixed::L32),
            _ => None,
        }
    }
}

/// Per-base precomputation: `windows[j][d-1] = base^(d · 16^j)` for
/// `d` in `1..16`, in backend-native residue form.
enum FixedTable {
    /// Montgomery-form limb vectors (width `k`) for the dynamic
    /// backend.
    Mont(Vec<Vec<Vec<u64>>>),
    /// Plain residues for the Barrett backend.
    Plain(Vec<Vec<BigUint>>),
    /// Flat Montgomery entries for the fixed-width backend: `windows`
    /// rows of 15 odd-digit entries, each `LIMBS` limbs, evaluated by
    /// [`FpMont::eval_window_table`] without intermediate allocations.
    Fp { windows: usize, flat: Vec<u64> },
}

impl FixedTable {
    fn windows(&self) -> usize {
        match self {
            FixedTable::Mont(w) => w.len(),
            FixedTable::Plain(w) => w.len(),
            FixedTable::Fp { windows, .. } => *windows,
        }
    }
}

/// A reusable ring `Z/nZ` with cached exponentiation acceleration.
pub struct ModRing {
    modulus: BigUint,
    backend: Backend,
    /// The allocation-free fixed-width backend, present when the
    /// modulus width matches a monomorphized instantiation. When set,
    /// every hot operation routes through it; `backend` remains the
    /// dynamic fallback (and the reference for the equivalence tests).
    fixed: Option<Fixed>,
    /// `base (mod n)` → `None` (registered, table not yet built) or
    /// `Some(table)`. Shared across clones so precomputation done by
    /// one thread benefits all holders of the same parameter set.
    tables: Arc<RwLock<HashMap<BigUint, Option<Arc<FixedTable>>>>>,
}

impl Clone for ModRing {
    fn clone(&self) -> ModRing {
        ModRing {
            modulus: self.modulus.clone(),
            backend: self.backend.clone(),
            fixed: self.fixed.clone(),
            tables: Arc::clone(&self.tables),
        }
    }
}

impl std::fmt::Debug for ModRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModRing")
            .field("modulus_bits", &self.modulus.bits())
            .field(
                "backend",
                &match self.backend {
                    Backend::Mont(_) => "montgomery",
                    Backend::Barrett(_) => "barrett",
                },
            )
            .field("fixed_width", &self.fixed.is_some())
            .field("registered_bases", &self.tables.read().len())
            .finish()
    }
}

impl PartialEq for ModRing {
    fn eq(&self, other: &ModRing) -> bool {
        self.modulus == other.modulus
    }
}

impl Eq for ModRing {}

impl ModRing {
    /// Creates a ring for modulus `n > 1`. Odd moduli get the
    /// Montgomery backend, even moduli fall back to Barrett.
    pub fn new(n: &BigUint) -> ModRing {
        assert!(!n.is_zero() && !n.is_one(), "ModRing modulus must exceed 1");
        let backend = if n.is_odd() {
            Backend::Mont(Montgomery::new(n))
        } else {
            Backend::Barrett(Barrett::new(n))
        };
        ModRing {
            modulus: n.clone(),
            backend,
            fixed: Fixed::for_modulus(n),
            tables: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Whether this ring runs its hot paths on the allocation-free
    /// fixed-width backend (diagnostic / bench aid).
    pub fn has_fixed_width(&self) -> bool {
        self.fixed.is_some()
    }

    /// A process-wide shared ring for `n`, memoized so repeated
    /// call-sites (every RSA verify/sign against the same key, every
    /// protocol round against the same group) reuse one context. The
    /// cache is bounded; evicting an entry only costs re-derivation.
    pub fn shared(n: &BigUint) -> Arc<ModRing> {
        static CACHE: OnceLock<RwLock<HashMap<BigUint, Arc<ModRing>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
        if let Some(ring) = cache.read().get(n) {
            return Arc::clone(ring);
        }
        let ring = Arc::new(ModRing::new(n));
        let mut w = cache.write();
        // Re-check under the write lock; another thread may have won.
        if let Some(existing) = w.get(n) {
            return Arc::clone(existing);
        }
        if w.len() >= 128 {
            // Simple bound: moduli are long-lived keys/groups, so the
            // cache only grows when many ephemeral keys churn through
            // (e.g. per-round one-time RSA keys). Dropping everything
            // is correct — entries are pure caches.
            w.clear();
        }
        w.insert(n.clone(), Arc::clone(&ring));
        ring
    }

    /// The ring modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// `x mod n`.
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        if x < &self.modulus {
            return x.clone();
        }
        match &self.backend {
            Backend::Mont(m) => x % m.modulus(),
            // Barrett reduction needs `x < n²`; `bits(x) ≤ 2·bits(n)−2`
            // guarantees it (`x < 2^(2k−2) ≤ (2^(k−1))² ≤ n²`). Wider
            // inputs take the plain division — a cold path, reached
            // only when registering or reducing foreign-sized values.
            Backend::Barrett(b) => {
                if x.bits() + 2 <= 2 * self.modulus.bits() {
                    b.reduce(x)
                } else {
                    x % &self.modulus
                }
            }
        }
    }

    /// `a · b mod n`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        if let Some(fixed) = &self.fixed {
            return with_fp!(fixed, fp => fp.mul(a, b));
        }
        match &self.backend {
            Backend::Mont(m) => m.mul(a, b),
            Backend::Barrett(b_) => b_.mul(a, b),
        }
    }

    /// `base^exp mod n` — the fixed-width stack ladder when the
    /// modulus width is monomorphized, the cached dynamic context
    /// otherwise.
    ///
    /// Span: `ring.pow_ns` (nested under `ring.pow_fixed_ns` /
    /// `ring.pow_crt_ns` when those paths fall through to here).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let _span = ppms_obs::timed!("ring.pow_ns");
        if let Some(fixed) = &self.fixed {
            return with_fp!(fixed, fp => fp.pow(base, exp));
        }
        match &self.backend {
            Backend::Mont(m) => m.modpow(base, exp),
            Backend::Barrett(b) => b.modpow(base, exp),
        }
    }

    /// `base^exp mod n` forced onto the dynamic heap-`Vec` backend,
    /// regardless of any fixed-width instantiation — the reference
    /// side of the fixed ≡ dynamic equivalence tests and the ablation
    /// bench. Protocol code should call [`ModRing::pow`].
    pub fn pow_dynamic(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        match &self.backend {
            Backend::Mont(m) => m.modpow(base, exp),
            Backend::Barrett(b) => b.modpow(base, exp),
        }
    }

    /// Marks `base` as a fixed base worth precomputing for. The k-ary
    /// window table itself is built lazily on the first
    /// [`ModRing::pow_fixed`] call, so registration is cheap and safe
    /// to do for every long-lived generator.
    pub fn register_base(&self, base: &BigUint) {
        let key = self.reduce(base);
        self.tables.write().entry(key).or_insert(None);
    }

    /// Whether `base` has been registered (test/diagnostic aid).
    pub fn is_registered(&self, base: &BigUint) -> bool {
        self.tables.read().contains_key(&self.reduce(base))
    }

    /// Eagerly builds window tables for every registered base (they
    /// otherwise build lazily on first [`ModRing::pow_fixed`] use).
    /// Call once before fanning work out to threads so workers share
    /// prebuilt tables instead of each paying the first-use cost.
    pub fn precompute(&self) {
        let pending: Vec<BigUint> = self
            .tables
            .read()
            .iter()
            .filter(|(_, table)| table.is_none())
            .map(|(base, _)| base.clone())
            .collect();
        for base in pending {
            let built = Arc::new(self.build_table(&base));
            let mut w = self.tables.write();
            if let Some(slot) = w.get_mut(&base) {
                if slot.is_none() {
                    *slot = Some(built);
                }
            }
        }
    }

    /// `base^exp mod n` using the fixed-base window table for `base`.
    ///
    /// Falls back to [`ModRing::pow`] when `base` was never registered
    /// or `exp` is wider than the precomputed table (tables cover
    /// exponents up to the modulus width, which bounds every group
    /// exponent in the protocols).
    pub fn pow_fixed(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let _span = ppms_obs::timed!("ring.pow_fixed_ns");
        let key = self.reduce(base);
        let cached = {
            let t = self.tables.read();
            match t.get(&key) {
                None => return self.pow(base, exp), // unregistered base
                Some(Some(table)) => Some(Arc::clone(table)),
                Some(None) => None, // registered, not yet built
            }
        };
        let table = match cached {
            Some(t) => t,
            None => {
                // Build outside any lock: construction is the expensive
                // part and must not serialize other readers.
                let built = Arc::new(self.build_table(&key));
                let mut w = self.tables.write();
                let slot = w.entry(key).or_insert(None);
                match slot {
                    Some(existing) => Arc::clone(existing), // raced: keep winner
                    None => {
                        *slot = Some(Arc::clone(&built));
                        built
                    }
                }
            }
        };
        if exp.bits() > table.windows() * WINDOW_BITS {
            return self.pow(base, exp);
        }
        self.eval_fixed(&table, exp)
    }

    /// Builds the per-base window table sized for exponents up to the
    /// modulus width.
    fn build_table(&self, base: &BigUint) -> FixedTable {
        if let Some(fixed) = &self.fixed {
            let (windows, flat) =
                with_fp!(fixed, fp => fp.build_window_table(base, self.modulus.bits()));
            return FixedTable::Fp { windows, flat };
        }
        let nwindows = self.modulus.bits().div_ceil(WINDOW_BITS).max(1);
        match &self.backend {
            Backend::Mont(m) => {
                let mut cur = m.to_mont(base); // base^(16^j), advancing j
                let mut windows = Vec::with_capacity(nwindows);
                for _ in 0..nwindows {
                    let mut row = Vec::with_capacity(WINDOW_SPAN - 1);
                    row.push(cur.clone()); // d = 1
                    for d in 2..WINDOW_SPAN {
                        row.push(m.mont_mul(&row[d - 2], &cur));
                    }
                    cur = m.mont_mul(&row[WINDOW_SPAN - 2], &cur); // ^16
                    windows.push(row);
                }
                FixedTable::Mont(windows)
            }
            Backend::Barrett(b) => {
                let mut cur = b.reduce(base);
                let mut windows = Vec::with_capacity(nwindows);
                for _ in 0..nwindows {
                    let mut row = Vec::with_capacity(WINDOW_SPAN - 1);
                    row.push(cur.clone());
                    for d in 2..WINDOW_SPAN {
                        row.push(b.mul(&row[d - 2], &cur));
                    }
                    cur = b.mul(&row[WINDOW_SPAN - 2], &cur);
                    windows.push(row);
                }
                FixedTable::Plain(windows)
            }
        }
    }

    /// Evaluates `base^exp` from a window table: one multiplication per
    /// nonzero 4-bit digit of `exp`, no squarings.
    fn eval_fixed(&self, table: &FixedTable, exp: &BigUint) -> BigUint {
        if let FixedTable::Fp { windows, flat } = table {
            let fixed = self
                .fixed
                .as_ref()
                .expect("Fp table built by a fixed-width ring");
            return with_fp!(fixed, fp => fp.eval_window_table(flat, *windows, exp));
        }
        let nwindows = exp.bits().div_ceil(WINDOW_BITS);
        match (&self.backend, table) {
            (Backend::Mont(m), FixedTable::Mont(windows)) => {
                let mut acc = m.r1.limbs().to_vec();
                acc.resize(m.k, 0);
                for (j, row) in windows.iter().enumerate().take(nwindows) {
                    let digit = exp_digit(exp, j);
                    if digit != 0 {
                        acc = m.mont_mul(&acc, &row[digit - 1]);
                    }
                }
                m.from_mont(&acc)
            }
            (Backend::Barrett(b), FixedTable::Plain(windows)) => {
                let mut acc = b.reduce(&BigUint::one());
                for (j, row) in windows.iter().enumerate().take(nwindows) {
                    let digit = exp_digit(exp, j);
                    if digit != 0 {
                        acc = b.mul(&acc, &row[digit - 1]);
                    }
                }
                acc
            }
            _ => unreachable!("table built by a different backend"),
        }
    }

    /// Simultaneous `∏ baseᵢ^expᵢ mod n` via Shamir's trick: a
    /// `2^len`-entry subset-product table, then one shared
    /// square-per-bit pass. For the dominant two-base shape this costs
    /// one squaring chain instead of two.
    ///
    /// Panics if more than 6 pairs are supplied (table growth is
    /// exponential; the protocols never exceed 3).
    pub fn multi_pow(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        let _span = ppms_obs::timed!("ring.multi_pow_ns");
        assert!(
            pairs.len() <= MULTI_POW_MAX,
            "multi_pow supports at most {MULTI_POW_MAX} bases"
        );
        if pairs.is_empty() {
            return self.reduce(&BigUint::one());
        }
        if let Some(fixed) = &self.fixed {
            return with_fp!(fixed, fp => fp.from_mont(&shamir(fp, pairs)));
        }
        match &self.backend {
            Backend::Mont(m) => m.from_mont(&shamir(m, pairs)),
            Backend::Barrett(b) => shamir(b, pairs),
        }
    }

    /// Unbounded simultaneous `∏ baseᵢ^expᵢ mod n` for batch
    /// verification: Straus interleaved 4-bit windows or Pippenger
    /// bucket accumulation, picked per call by `pick_bucketed`'s
    /// multiplication-count model (the crossover depends on both the
    /// base count and the exponent width). Unlike
    /// [`ModRing::multi_pow`] there is no subset table, so `N` is
    /// unlimited; all terms share one squaring chain.
    ///
    /// Exponents are used as given (callers reduce mod the group order
    /// where that is meaningful — this ring cannot know the order).
    /// Empty input yields `1 mod n`.
    ///
    /// Span: `ring.multi_pow_n_ns`.
    pub fn multi_pow_n(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        let _span = ppms_obs::timed!("ring.multi_pow_n_ns");
        let max_bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
        self.multi_pow_n_impl(pairs, pick_bucketed(pairs.len(), max_bits))
    }

    /// Straus evaluation regardless of `N` — exposed so the bench can
    /// measure the crossover against [`ModRing::multi_pow_n_pippenger`].
    pub fn multi_pow_n_straus(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        self.multi_pow_n_impl(pairs, false)
    }

    /// Pippenger evaluation regardless of `N` — exposed for crossover
    /// measurement.
    pub fn multi_pow_n_pippenger(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        self.multi_pow_n_impl(pairs, true)
    }

    /// [`ModRing::multi_pow_n`] forced onto the dynamic heap-`Vec`
    /// backend — the reference side of the fixed ≡ dynamic equivalence
    /// tests and the ablation bench.
    pub fn multi_pow_n_dynamic(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        if pairs.is_empty() {
            return self.reduce(&BigUint::one());
        }
        let max_bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
        self.multi_pow_n_dyn_impl(pairs, pick_bucketed(pairs.len(), max_bits))
    }

    fn multi_pow_n_impl(&self, pairs: &[(&BigUint, &BigUint)], bucketed: bool) -> BigUint {
        if pairs.is_empty() {
            return self.reduce(&BigUint::one());
        }
        if let Some(fixed) = &self.fixed {
            return with_fp!(
                fixed,
                fp => fp.from_mont(&fp.multi_pow_n_mont(pairs, bucketed))
            );
        }
        self.multi_pow_n_dyn_impl(pairs, bucketed)
    }

    fn multi_pow_n_dyn_impl(&self, pairs: &[(&BigUint, &BigUint)], bucketed: bool) -> BigUint {
        match &self.backend {
            Backend::Mont(m) => {
                let acc = if bucketed {
                    pippenger(m, pairs)
                } else {
                    straus(m, pairs)
                };
                m.from_mont(&acc)
            }
            Backend::Barrett(b) => {
                if bucketed {
                    pippenger(b, pairs)
                } else {
                    straus(b, pairs)
                }
            }
        }
    }

    /// Batch modular inversion by Montgomery's trick: one real
    /// inversion plus `3(N−1)` multiplications for `N` inputs.
    ///
    /// Per-slot results are exactly what per-element
    /// `x.modinv(modulus)` returns: if any input is not invertible the
    /// aggregate inversion fails and the routine falls back to
    /// element-wise inversion, so non-invertible slots come back
    /// `None` and the rest are still correct.
    ///
    /// Span: `ring.batch_inv_ns`.
    pub fn batch_inv(&self, xs: &[BigUint]) -> Vec<Option<BigUint>> {
        let _span = ppms_obs::timed!("ring.batch_inv_ns");
        if xs.is_empty() {
            return Vec::new();
        }
        let reduced: Vec<BigUint> = xs.iter().map(|x| self.reduce(x)).collect();
        // prefix[i] = r₀·…·rᵢ mod n
        let mut prefix = Vec::with_capacity(reduced.len());
        prefix.push(reduced[0].clone());
        for r in &reduced[1..] {
            let next = self.mul(prefix.last().unwrap(), r);
            prefix.push(next);
        }
        let Some(total_inv) = prefix.last().unwrap().modinv(&self.modulus) else {
            // Some element shares a factor with n (or is zero): the
            // aggregate is non-invertible. Element-wise fallback keeps
            // every slot bit-identical to the sequential path.
            return reduced.iter().map(|r| r.modinv(&self.modulus)).collect();
        };
        // Walk back: running holds (r₀·…·rᵢ)⁻¹; multiplying by
        // prefix[i−1] isolates rᵢ⁻¹, multiplying by rᵢ steps down.
        let mut out = vec![None; reduced.len()];
        let mut running = total_inv;
        for i in (0..reduced.len()).rev() {
            out[i] = Some(if i == 0 {
                running.clone()
            } else {
                self.mul(&running, &prefix[i - 1])
            });
            if i > 0 {
                running = self.mul(&running, &reduced[i]);
            }
        }
        out
    }

    /// Secret-exponent power through the CRT decomposition of an RSA
    /// modulus: `base^d mod pq` computed as two half-width
    /// exponentiations plus Garner recombination.
    ///
    /// Debug-asserts that `crt` matches this ring's modulus.
    pub fn pow_crt(&self, base: &BigUint, crt: &RsaCrt) -> BigUint {
        debug_assert_eq!(
            &(crt.p() * crt.q()),
            &self.modulus,
            "RsaCrt does not factor this ring's modulus"
        );
        crt.pow_secret(base)
    }
}

fn exp_digit(exp: &BigUint, window: usize) -> usize {
    digit_at(exp, window * WINDOW_BITS, WINDOW_BITS)
}

/// Chooses between Straus and Pippenger for [`ModRing::multi_pow_n`]
/// by predicted multiplication count. Straus pays a 14-mul odd-digit
/// table per base plus one insertion per base per 4-bit window.
/// Pippenger pays per `w`-bit window one insertion per base — but an
/// insertion into an empty bucket is a copy, not a mul — plus the
/// suffix running-product walk, which only multiplies at occupied
/// buckets, so its per-window cost sits near *half* the `2^w − 1`
/// bucket count rather than the `2·2^w` the previous model charged.
/// Both share one squaring chain, so squarings cancel out.
///
/// Constants are tuned to the `fixed_crossover` table of the
/// `ablation_fixed` bench (1024-bit modulus on the fixed-width
/// kernels): full-width exponents cross near n≈96–128 (measured
/// 8.9ms/9.0ms at 96, 15.1ms/13.5ms at 192), while 64-bit
/// small-exponent batches — the batch-verification shape — flip to
/// Pippenger by n≈16 already (285µs vs 239µs; 2531µs vs 1239µs at
/// 256). The Vec-path model this replaces put the small-exponent
/// crossover near 150 and sent every batch-verify call down the slow
/// path.
fn pick_bucketed(n: usize, max_bits: usize) -> bool {
    if n == 0 || max_bits == 0 {
        return false;
    }
    let w = pippenger_window(n);
    // Straus: 14·n table muls + (15/16)·n insertions per 4-bit window.
    let straus = 14 * n + max_bits.div_ceil(WINDOW_BITS) * (n - n / 16);
    // Pippenger: per window, ~n insertion muls (first touches are
    // copies, folded into the halved walk term) + ~(2^w − 1)/2 + 2
    // walk muls over the occupied buckets.
    let pippenger = max_bits.div_ceil(w) * (n + ((1 << w) - 1) / 2 + 2);
    pippenger < straus
}

/// Backend-native residue arithmetic, so the multi-exponentiation
/// algorithms are written once instead of per backend. Montgomery
/// works on fixed-width limb vectors, Barrett on plain residues.
trait MulKernel {
    type Elem: Clone;
    fn k_one(&self) -> Self::Elem;
    fn k_from(&self, x: &BigUint) -> Self::Elem;
    fn k_mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    fn k_sqr(&self, a: &Self::Elem) -> Self::Elem;
}

impl MulKernel for Montgomery {
    type Elem = Vec<u64>;
    fn k_one(&self) -> Vec<u64> {
        let mut one = self.r1.limbs().to_vec();
        one.resize(self.k, 0);
        one
    }
    fn k_from(&self, x: &BigUint) -> Vec<u64> {
        self.to_mont(x)
    }
    fn k_mul(&self, a: &Vec<u64>, b: &Vec<u64>) -> Vec<u64> {
        self.mont_mul(a, b)
    }
    fn k_sqr(&self, a: &Vec<u64>) -> Vec<u64> {
        self.mont_sqr(a)
    }
}

impl MulKernel for Barrett {
    type Elem = BigUint;
    fn k_one(&self) -> BigUint {
        self.reduce(&BigUint::one())
    }
    fn k_from(&self, x: &BigUint) -> BigUint {
        if x < self.modulus() {
            x.clone()
        } else {
            x % self.modulus()
        }
    }
    fn k_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.mul(a, b)
    }
    fn k_sqr(&self, a: &BigUint) -> BigUint {
        self.sqr(a)
    }
}

impl<const LIMBS: usize> MulKernel for FpMont<LIMBS> {
    type Elem = [u64; LIMBS];
    fn k_one(&self) -> [u64; LIMBS] {
        self.one_mont()
    }
    fn k_from(&self, x: &BigUint) -> [u64; LIMBS] {
        self.to_mont(x)
    }
    fn k_mul(&self, a: &[u64; LIMBS], b: &[u64; LIMBS]) -> [u64; LIMBS] {
        self.mont_mul(a, b)
    }
    fn k_sqr(&self, a: &[u64; LIMBS]) -> [u64; LIMBS] {
        self.mont_sqr(a)
    }
}

/// Shamir simultaneous exponentiation over any [`MulKernel`]: a
/// `2^n − 1`-entry subset-product table (entry `mask − 1` holds
/// `∏ baseᵢ` over the set bits of `mask`), then one shared
/// square-per-bit chain with a single table multiplication per bit.
/// Callers guarantee `pairs` is non-empty and small (≤ 6 bases).
fn shamir<K: MulKernel>(k: &K, pairs: &[(&BigUint, &BigUint)]) -> K::Elem {
    let n = pairs.len();
    let bases: Vec<K::Elem> = pairs.iter().map(|(b, _)| k.k_from(b)).collect();
    let mut subset: Vec<K::Elem> = Vec::with_capacity((1 << n) - 1);
    for mask in 1usize..(1 << n) {
        let low = mask & mask.wrapping_neg();
        let rest = mask ^ low;
        let base = &bases[low.trailing_zeros() as usize];
        subset.push(if rest == 0 {
            base.clone()
        } else {
            k.k_mul(&subset[rest - 1], base)
        });
    }
    let max_bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
    let mut acc = k.k_one();
    let mut started = false;
    for bit in (0..max_bits).rev() {
        if started {
            acc = k.k_sqr(&acc);
        }
        let mut mask = 0usize;
        for (i, (_, e)) in pairs.iter().enumerate() {
            if e.bit(bit) {
                mask |= 1 << i;
            }
        }
        if mask != 0 {
            acc = if started {
                k.k_mul(&acc, &subset[mask - 1])
            } else {
                subset[mask - 1].clone()
            };
            started = true;
        }
    }
    acc
}

/// Straus interleaved multi-exponentiation: a 4-bit odd-digit table
/// per base (15 entries), one shared squaring chain. Table setup costs
/// `14·N` muls, so it wins for small `N`; above the crossover the
/// per-base tables dominate and Pippenger takes over.
fn straus<K: MulKernel>(k: &K, pairs: &[(&BigUint, &BigUint)]) -> K::Elem {
    let tables: Vec<Vec<K::Elem>> = pairs
        .iter()
        .map(|(base, _)| {
            let b1 = k.k_from(base);
            let mut row = Vec::with_capacity(WINDOW_SPAN - 1);
            row.push(b1.clone());
            for d in 2..WINDOW_SPAN {
                row.push(k.k_mul(&row[d - 2], &b1));
            }
            row
        })
        .collect();
    let max_bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
    let nwindows = max_bits.div_ceil(WINDOW_BITS);
    let mut acc = k.k_one();
    let mut started = false;
    for w in (0..nwindows).rev() {
        if started {
            for _ in 0..WINDOW_BITS {
                acc = k.k_sqr(&acc);
            }
        }
        for (table, (_, e)) in tables.iter().zip(pairs) {
            let digit = exp_digit(e, w);
            if digit != 0 {
                acc = k.k_mul(&acc, &table[digit - 1]);
                started = true;
            }
        }
    }
    acc
}

/// Pippenger bucket multi-exponentiation: per window, bases fall into
/// buckets by digit (one mul each), and `∏ bucket_d^d` is assembled
/// with `2·(2^w−1)` muls via the suffix-running-product trick — no
/// per-base tables at all.
fn pippenger<K: MulKernel>(k: &K, pairs: &[(&BigUint, &BigUint)]) -> K::Elem {
    let w = pippenger_window(pairs.len());
    let nbuckets = (1usize << w) - 1;
    let bases: Vec<K::Elem> = pairs.iter().map(|(b, _)| k.k_from(b)).collect();
    let max_bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
    let nwindows = max_bits.div_ceil(w);
    let mut acc = k.k_one();
    let mut started = false;
    for win in (0..nwindows).rev() {
        if started {
            for _ in 0..w {
                acc = k.k_sqr(&acc);
            }
        }
        // buckets[d−1] = ∏ of bases whose digit in this window is d.
        let mut buckets: Vec<Option<K::Elem>> = vec![None; nbuckets];
        for (base, (_, e)) in bases.iter().zip(pairs) {
            let d = digit_at(e, win * w, w);
            if d != 0 {
                buckets[d - 1] = Some(match &buckets[d - 1] {
                    Some(cur) => k.k_mul(cur, base),
                    None => base.clone(),
                });
            }
        }
        // windowsum = ∏ bucket_d^d: running suffix product hits
        // bucket_d exactly d times.
        let mut running: Option<K::Elem> = None;
        let mut windowsum: Option<K::Elem> = None;
        for bucket in buckets.iter().rev() {
            if let Some(b) = bucket {
                running = Some(match &running {
                    Some(r) => k.k_mul(r, b),
                    None => b.clone(),
                });
            }
            if let Some(r) = &running {
                windowsum = Some(match &windowsum {
                    Some(ws) => k.k_mul(ws, r),
                    None => r.clone(),
                });
            }
        }
        if let Some(ws) = windowsum {
            acc = if started { k.k_mul(&acc, &ws) } else { ws };
            started = true;
        }
    }
    if started {
        acc
    } else {
        k.k_one()
    }
}

/// CRT decomposition of an RSA secret key: `p`, `q`, `d_p = d mod
/// (p−1)`, `d_q = d mod (q−1)`, `q_inv = q^{-1} mod p`, plus cached
/// half-width rings for the two prime moduli.
///
/// Equality ignores the cached rings (they are derived state).
#[derive(Clone, Debug)]
pub struct RsaCrt {
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
    ring_p: ModRing,
    ring_q: ModRing,
}

impl PartialEq for RsaCrt {
    fn eq(&self, other: &RsaCrt) -> bool {
        self.p == other.p && self.q == other.q && self.d_p == other.d_p && self.d_q == other.d_q
    }
}

impl Eq for RsaCrt {}

impl RsaCrt {
    /// Builds the CRT context from the prime factorization and the
    /// secret exponent. Panics if `q` is not invertible mod `p`
    /// (impossible for distinct primes).
    pub fn new(p: &BigUint, q: &BigUint, d: &BigUint) -> RsaCrt {
        let p1 = p - 1u64;
        let q1 = q - 1u64;
        let q_inv = q.modinv(p).expect("p, q must be distinct primes");
        RsaCrt {
            p: p.clone(),
            q: q.clone(),
            d_p: d % &p1,
            d_q: d % &q1,
            q_inv,
            ring_p: ModRing::new(p),
            ring_q: ModRing::new(q),
        }
    }

    pub fn p(&self) -> &BigUint {
        &self.p
    }

    pub fn q(&self) -> &BigUint {
        &self.q
    }

    /// `base^d mod pq` using the cached `d_p`/`d_q`.
    pub fn pow_secret(&self, base: &BigUint) -> BigUint {
        self.pow_split(base, &self.d_p, &self.d_q)
    }

    /// `base^e mod pq` for an arbitrary exponent `e` (reduced per
    /// prime first) — used by partially blind signatures where the
    /// secret exponent depends on the common info string.
    pub fn pow(&self, base: &BigUint, e: &BigUint) -> BigUint {
        let e_p = e % &(&self.p - 1u64);
        let e_q = e % &(&self.q - 1u64);
        self.pow_split(base, &e_p, &e_q)
    }

    /// Garner recombination: `m = m₂ + q · (q_inv · (m₁ − m₂) mod p)`.
    ///
    /// Span: `ring.pow_crt_ns` — the two half-width `ring.pow_ns`
    /// spans it drives nest inside it.
    fn pow_split(&self, base: &BigUint, e_p: &BigUint, e_q: &BigUint) -> BigUint {
        let _span = ppms_obs::timed!("ring.pow_crt_ns");
        let m1 = self.ring_p.pow(&self.ring_p.reduce(base), e_p);
        let m2 = self.ring_q.pow(&self.ring_q.reduce(base), e_q);
        let h = self.ring_p.mul(&self.q_inv, &m1.modsub(&m2, &self.p));
        &m2 + &(&self.q * &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modpow_plain;

    fn n_odd() -> BigUint {
        BigUint::parse_hex("f123456789abcdef0123456789abcdef0123456789abcdef").unwrap()
    }

    #[test]
    fn pow_matches_plain_both_backends() {
        let base = BigUint::parse_hex("deadbeefcafebabe1122334455667788").unwrap();
        let exp = BigUint::parse_hex("0102030405060708090a0b0c0d0e0f10").unwrap();
        for n in [n_odd(), &n_odd() + 1u64] {
            let ring = ModRing::new(&n);
            assert_eq!(ring.pow(&base, &exp), modpow_plain(&base, &exp, &n));
        }
    }

    #[test]
    fn pow_fixed_matches_pow() {
        let n = n_odd();
        let ring = ModRing::new(&n);
        let g = BigUint::from(7u64);
        // Unregistered: silent fallback.
        let e = BigUint::parse_hex("0123456789abcdef55aa55aa").unwrap();
        assert_eq!(ring.pow_fixed(&g, &e), ring.pow(&g, &e));
        // Registered: table path.
        ring.register_base(&g);
        assert!(ring.is_registered(&g));
        for exp in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from(16u64),
            e.clone(),
            &n - 1u64,
        ] {
            assert_eq!(
                ring.pow_fixed(&g, &exp),
                ring.pow(&g, &exp),
                "exp = {}",
                exp.to_dec()
            );
        }
    }

    #[test]
    fn pow_fixed_even_modulus() {
        let n = &n_odd() + 1u64;
        assert!(n.is_even());
        let ring = ModRing::new(&n);
        let g = BigUint::from(3u64);
        ring.register_base(&g);
        let e = BigUint::parse_hex("fedcba9876543210").unwrap();
        assert_eq!(ring.pow_fixed(&g, &e), modpow_plain(&g, &e, &n));
    }

    #[test]
    fn pow_fixed_oversized_exponent_falls_back() {
        let n = BigUint::from(1_000_003u64); // ~20-bit modulus
        let ring = ModRing::new(&n);
        let g = BigUint::from(5u64);
        ring.register_base(&g);
        let huge = BigUint::one() << 100; // wider than the table
        assert_eq!(ring.pow_fixed(&g, &huge), modpow_plain(&g, &huge, &n));
    }

    #[test]
    fn clones_share_tables() {
        let ring = ModRing::new(&n_odd());
        let clone = ring.clone();
        clone.register_base(&BigUint::from(11u64));
        assert!(ring.is_registered(&BigUint::from(11u64)));
    }

    #[test]
    fn multi_pow_matches_products() {
        let n = n_odd();
        let ring = ModRing::new(&n);
        let g = BigUint::from(2u64);
        let h = BigUint::from(65537u64);
        let k = BigUint::from(1234567u64);
        let a = BigUint::parse_hex("a5a5a5a5a5a5a5a5").unwrap();
        let b = BigUint::parse_hex("0f0f0f0f0f0f").unwrap();
        let c = BigUint::from(3u64);
        let expect = ring.mul(
            &ring.mul(&ring.pow(&g, &a), &ring.pow(&h, &b)),
            &ring.pow(&k, &c),
        );
        assert_eq!(ring.multi_pow(&[(&g, &a), (&h, &b), (&k, &c)]), expect);
        // Degenerate shapes.
        assert_eq!(ring.multi_pow(&[]), BigUint::one());
        assert_eq!(ring.multi_pow(&[(&g, &BigUint::zero())]), BigUint::one());
        assert_eq!(ring.multi_pow(&[(&g, &a)]), ring.pow(&g, &a));
    }

    #[test]
    fn crt_matches_plain_exponent() {
        // Small primes; d chosen coprime to nothing in particular —
        // CRT only needs p, q prime and distinct.
        let p = BigUint::from(1_000_003u64);
        let q = BigUint::from(999_983u64);
        let n = &p * &q;
        let d = BigUint::from(0x1234_5677u64);
        let crt = RsaCrt::new(&p, &q, &d);
        let ring = ModRing::new(&n);
        for base in [2u64, 17, 999_999_999, 123_456_789_012_345] {
            let base = BigUint::from(base);
            assert_eq!(ring.pow_crt(&base, &crt), ring.pow(&base, &d));
            assert_eq!(crt.pow(&base, &d), ring.pow(&base, &d));
        }
    }

    #[test]
    fn shared_ring_is_memoized() {
        let n = n_odd();
        let a = ModRing::shared(&n);
        let b = ModRing::shared(&n);
        assert!(Arc::ptr_eq(&a, &b));
    }

    /// Deterministic (base, exp) pairs for the multi-exp tests.
    fn pseudo_pairs(n: &BigUint, count: usize, exp_bits: usize) -> Vec<(BigUint, BigUint)> {
        let mut state = 0x1234_5678_9ABC_DEF0u64 ^ count as u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..count)
            .map(|_| {
                let base = &BigUint::from(next()) % n;
                let mut e = BigUint::from(next());
                while e.bits() < exp_bits {
                    e = (e << 64usize) + BigUint::from(next());
                }
                let shift = e.bits() - exp_bits;
                (base, e >> shift)
            })
            .collect()
    }

    fn product_of_pows(ring: &ModRing, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        pairs
            .iter()
            .fold(ring.reduce(&BigUint::one()), |acc, (b, e)| {
                ring.mul(&acc, &ring.pow(b, e))
            })
    }

    #[test]
    fn multi_pow_n_matches_products_both_backends() {
        for n in [n_odd(), &n_odd() + 1u64] {
            let ring = ModRing::new(&n);
            for count in [1usize, 2, 7, 33, 70] {
                let owned = pseudo_pairs(&n, count, 64);
                let pairs: Vec<(&BigUint, &BigUint)> = owned.iter().map(|(b, e)| (b, e)).collect();
                let expect = product_of_pows(&ring, &pairs);
                assert_eq!(ring.multi_pow_n(&pairs), expect, "dispatch count {count}");
                assert_eq!(
                    ring.multi_pow_n_straus(&pairs),
                    expect,
                    "straus count {count}"
                );
                assert_eq!(
                    ring.multi_pow_n_pippenger(&pairs),
                    expect,
                    "pippenger count {count}"
                );
            }
        }
    }

    #[test]
    fn multi_pow_n_edge_shapes() {
        let n = n_odd();
        let ring = ModRing::new(&n);
        assert_eq!(ring.multi_pow_n(&[]), BigUint::one());
        let g = BigUint::from(7u64);
        let zero = BigUint::zero();
        assert_eq!(ring.multi_pow_n(&[(&g, &zero)]), BigUint::one());
        // Wide exponents (full modulus width) still match.
        let e = &n - 2u64;
        assert_eq!(ring.multi_pow_n(&[(&g, &e)]), ring.pow(&g, &e));
        assert_eq!(ring.multi_pow_n_pippenger(&[(&g, &e)]), ring.pow(&g, &e));
        // Repeated bases multiply through like separate terms.
        let a = BigUint::from(123_456_789u64);
        let b = BigUint::from(987_654_321u64);
        let expect = ring.mul(&ring.pow(&g, &a), &ring.pow(&g, &b));
        assert_eq!(ring.multi_pow_n(&[(&g, &a), (&g, &b)]), expect);
    }

    #[test]
    fn batch_inv_matches_modinv() {
        let n = n_odd();
        let ring = ModRing::new(&n);
        let owned = pseudo_pairs(&n, 9, 64);
        let xs: Vec<BigUint> = owned.into_iter().map(|(b, _)| b).collect();
        let got = ring.batch_inv(&xs);
        for (x, inv) in xs.iter().zip(&got) {
            assert_eq!(inv, &x.modinv(&n), "x = {}", x.to_dec());
            if let Some(inv) = inv {
                assert!(ring.mul(&ring.reduce(x), inv).is_one());
            }
        }
    }

    #[test]
    fn batch_inv_noninvertible_elements_fall_back() {
        // Even modulus: even inputs (and zero) are non-invertible, the
        // rest must still come back inverted.
        let n = &n_odd() + 1u64;
        let ring = ModRing::new(&n);
        let xs = vec![
            BigUint::from(3u64),
            BigUint::zero(),
            BigUint::from(10u64),
            BigUint::from(12345u64),
        ];
        let got = ring.batch_inv(&xs);
        for (x, inv) in xs.iter().zip(&got) {
            assert_eq!(inv, &x.modinv(&n), "x = {}", x.to_dec());
        }
        assert!(got[1].is_none() && got[2].is_none());
        assert!(got[0].is_some() && got[3].is_some());
        assert!(ring.batch_inv(&[]).is_empty());
    }
}
