//! Division and remainder via Knuth's Algorithm D (TAOCP vol. 2, 4.3.1),
//! with a fast path for single-limb divisors.

use crate::BigUint;
use std::ops::{Div, Rem};

/// Divides by a single limb; returns (quotient, remainder).
fn divrem_limb(a: &BigUint, d: u64) -> (BigUint, u64) {
    debug_assert!(d != 0);
    let mut q = vec![0u64; a.limbs.len()];
    let mut rem = 0u128;
    for i in (0..a.limbs.len()).rev() {
        let cur = (rem << 64) | a.limbs[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    (BigUint::from_limbs(q), rem as u64)
}

/// Full Knuth Algorithm D for multi-limb divisors.
fn divrem_knuth(a: &BigUint, b: &BigUint) -> (BigUint, BigUint) {
    let n = b.limbs.len();
    let m = a.limbs.len() - n;
    // D1: normalize so the divisor's top limb has its high bit set.
    let s = b.limbs[n - 1].leading_zeros() as usize;
    let v = (b << s).limbs;
    let mut u = (a << s).limbs;
    u.resize(a.limbs.len() + 1, 0); // extra high limb u[m+n]

    let mut q = vec![0u64; m + 1];
    let b_radix = 1u128 << 64;

    // D2..D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two limbs of the current window.
        let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = top / v[n - 1] as u128;
        let mut rhat = top % v[n - 1] as u128;
        while qhat >= b_radix
            || (n >= 2 && qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128))
        {
            qhat -= 1;
            rhat += v[n - 1] as u128;
            if rhat >= b_radix {
                break;
            }
        }

        // D4: multiply and subtract qhat * v from u[j..=j+n]. `k` folds
        // the multiplication carry and the subtraction borrow together
        // (Hacker's Delight divmnu): k stays in [0, 2^64].
        let mut k = 0i128;
        for i in 0..n {
            let p = qhat * v[i] as u128;
            let t = u[j + i] as i128 - k - (p as u64) as i128;
            u[j + i] = t as u64;
            k = (p >> 64) as i128 - (t >> 64); // t >> 64 is 0 or -1
        }
        let t = u[j + n] as i128 - k;
        u[j + n] = t as u64;

        // D5/D6: if we overshot (negative), add one divisor back.
        if t < 0 {
            qhat -= 1;
            let mut carry2 = 0u128;
            for i in 0..n {
                let t = u[j + i] as u128 + v[i] as u128 + carry2;
                u[j + i] = t as u64;
                carry2 = t >> 64;
            }
            u[j + n] = (u[j + n] as u128).wrapping_add(carry2) as u64;
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let rem = BigUint::from_limbs(u[..n].to_vec()) >> s;
    (BigUint::from_limbs(q), rem)
}

/// Computes `(a / b, a % b)`. Panics if `b` is zero.
pub(crate) fn divrem(a: &BigUint, b: &BigUint) -> (BigUint, BigUint) {
    assert!(!b.is_zero(), "division by zero BigUint");
    if a < b {
        return (BigUint::zero(), a.clone());
    }
    if b.limbs.len() == 1 {
        let (q, r) = divrem_limb(a, b.limbs[0]);
        return (q, BigUint::from(r));
    }
    divrem_knuth(a, b)
}

impl BigUint {
    /// `(self / d, self % d)` in one pass.
    #[inline]
    pub fn divrem(&self, d: &BigUint) -> (BigUint, BigUint) {
        divrem(self, d)
    }

    /// `self % m` (alias for the `%` operator, handy in chained calls).
    #[inline]
    pub fn rem_ref(&self, m: &BigUint) -> BigUint {
        divrem(self, m).1
    }

    /// Divides by a `u64`, returning `(quotient, remainder)`.
    pub fn divrem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        divrem_limb(self, d)
    }
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        divrem(self, rhs).0
    }
}

impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        divrem(&self, &rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        divrem(self, rhs).1
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        divrem(&self, &rhs).1
    }
}

impl Rem<u64> for &BigUint {
    type Output = u64;
    fn rem(self, rhs: u64) -> u64 {
        self.divrem_u64(rhs).1
    }
}

impl Div<&BigUint> for BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        divrem(&self, rhs).0
    }
}

impl Div<BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        divrem(self, &rhs).0
    }
}

impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        divrem(&self, rhs).1
    }
}

impl Rem<BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        divrem(self, &rhs).1
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn small_division() {
        let a = BigUint::from(100u64);
        let b = BigUint::from(7u64);
        let (q, r) = a.divrem(&b);
        assert_eq!(q, BigUint::from(14u64));
        assert_eq!(r, BigUint::from(2u64));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let a = BigUint::from(3u64);
        let b = BigUint::from(10u64);
        let (q, r) = a.divrem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn exact_division() {
        let b = BigUint::from(0xABCDEFu64);
        let a = &b * &BigUint::from(0x123456789u64);
        let (q, r) = a.divrem(&b);
        assert_eq!(q, BigUint::from(0x123456789u64));
        assert!(r.is_zero());
    }

    #[test]
    fn multi_limb_knuth_path() {
        // a = b*q + r with multi-limb b, exercising the D-loop.
        let b = BigUint::from_limbs(vec![0x1234_5678_9ABC_DEF0, 0x0FED_CBA9_8765_4321, 7]);
        let q_true = BigUint::from_limbs(vec![u64::MAX, 0x8000_0000_0000_0001, 42]);
        let r_true = BigUint::from_limbs(vec![99, 5]);
        assert!(r_true < b);
        let a = &(&b * &q_true) + &r_true;
        let (q, r) = a.divrem(&b);
        assert_eq!(q, q_true);
        assert_eq!(r, r_true);
    }

    #[test]
    fn knuth_add_back_case() {
        // Constructed to trigger the rare D6 add-back branch:
        // divisor with max top limb, dividend forcing qhat overestimate.
        let b = BigUint::from_limbs(vec![0, u64::MAX]);
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX - 1, u64::MAX - 1]);
        let (q, r) = a.divrem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn division_by_one_and_self() {
        let a = BigUint::from_limbs(vec![1, 2, 3]);
        assert_eq!(&a / &BigUint::one(), a);
        assert_eq!(&a % &BigUint::one(), BigUint::zero());
        assert_eq!(&a / &a.clone(), BigUint::one());
        assert_eq!(&a % &a.clone(), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::one().divrem(&BigUint::zero());
    }

    #[test]
    fn rem_u64() {
        let a = BigUint::from_limbs(vec![5, 9, 13]);
        let m = 1_000_003u64;
        let r = &a % m;
        let (_, r2) = a.divrem(&BigUint::from(m));
        assert_eq!(BigUint::from(r), r2);
    }

    #[test]
    fn u128_reference_division() {
        for (x, y) in [
            (u128::MAX, 3u128),
            (u128::MAX, u64::MAX as u128),
            ((1u128 << 127) + 12345, (1u128 << 65) + 7),
            (999_999_999_999_999_999, 1_000_000_007),
        ] {
            let (q, r) = BigUint::from(x).divrem(&BigUint::from(y));
            assert_eq!(q.to_u128(), Some(x / y), "q for {x}/{y}");
            assert_eq!(r.to_u128(), Some(x % y), "r for {x}/{y}");
        }
    }
}
