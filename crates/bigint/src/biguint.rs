//! The [`BigUint`] type: construction, normalization, inspection and
//! comparison. Arithmetic lives in the sibling modules.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Representation: little-endian `u64` limbs, **normalized** — the most
/// significant limb is never zero, and zero is the empty limb vector.
/// Every constructor and every operation upholds this invariant; it is
/// checked by `debug_assert`s throughout.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// The value `2`.
    #[inline]
    pub fn two() -> Self {
        BigUint { limbs: vec![2] }
    }

    /// Builds from little-endian limbs, normalizing.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Read-only view of the little-endian limbs.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => (self.limbs.len() - 1) * 64 + (64 - hi.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit order).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `v`, growing as needed.
    pub fn set_bit(&mut self, i: usize, v: bool) {
        let (limb, off) = (i / 64, i % 64);
        if v {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Strips trailing zero limbs (restores the normalization invariant).
    #[inline]
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    #[inline]
    pub(crate) fn debug_check(&self) {
        debug_assert!(self.limbs.last() != Some(&0), "unnormalized BigUint");
    }

    /// `self^2` through the dedicated squaring kernel (halved partial
    /// products; Karatsuba recursion above the square crossover).
    pub fn square(&self) -> BigUint {
        crate::mul::sqr(self)
    }

    /// `self^exp` by binary exponentiation (no modulus — use with care,
    /// results grow quickly).
    pub fn pow(&self, mut exp: u64) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = crate::mul::mul(&acc, &base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.square();
            }
        }
        acc
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_dec())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::zero().limbs().len(), 0);
        assert_eq!(BigUint::from(0u64), BigUint::zero());
    }

    #[test]
    fn normalization() {
        let a = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(a.limbs(), &[5]);
        let b = BigUint::from_limbs(vec![0, 0]);
        assert!(b.is_zero());
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from(0xffu64).bits(), 8);
        assert_eq!(BigUint::from(1u128 << 100).bits(), 101);
    }

    #[test]
    fn bit_get_set() {
        let mut a = BigUint::zero();
        a.set_bit(130, true);
        assert!(a.bit(130));
        assert!(!a.bit(129));
        assert_eq!(a.bits(), 131);
        a.set_bit(130, false);
        assert!(a.is_zero());
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert!(BigUint::from(2u64).is_even());
        assert!(BigUint::from(u64::MAX).is_odd());
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(1u128 << 80);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::one().trailing_zeros(), Some(0));
        assert_eq!(BigUint::from(8u64).trailing_zeros(), Some(3));
        assert_eq!(BigUint::from(1u128 << 70).trailing_zeros(), Some(70));
    }

    #[test]
    fn u64_u128_roundtrip() {
        assert_eq!(BigUint::from(42u64).to_u64(), Some(42));
        assert_eq!(BigUint::from(1u128 << 90).to_u64(), None);
        assert_eq!(BigUint::from(1u128 << 90).to_u128(), Some(1u128 << 90));
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigUint::from(3u64).pow(5), BigUint::from(243u64));
        assert_eq!(
            BigUint::from(2u64).pow(100),
            BigUint::from_limbs(vec![0, 1 << 36])
        );
        assert_eq!(BigUint::from(7u64).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(3), BigUint::zero());
    }
}
