//! Conversions: big-endian bytes, hex and decimal strings.

use crate::BigUint;

/// Error parsing a textual big integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    bad_char: char,
}

impl std::fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid digit {:?} in big integer literal",
            self.bad_char
        )
    }
}

impl std::error::Error for ParseBigUintError {}

impl BigUint {
    /// Builds from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut l = 0u64;
            for &b in chunk {
                l = (l << 8) | b as u64;
            }
            limbs.push(l);
        }
        BigUint::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes with no leading zeros
    /// (`0` serializes to an empty vector).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with
    /// zeros. Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value needs {} bytes, got {len}",
            raw.len()
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn parse_hex(s: &str) -> Result<BigUint, ParseBigUintError> {
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseBigUintError { bad_char: c })?;
            acc = (acc << 4usize) + BigUint::from(d as u64);
        }
        Ok(acc)
    }

    /// Formats as lowercase hex (no prefix; `"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Parses a decimal string.
    pub fn parse_dec(s: &str) -> Result<BigUint, ParseBigUintError> {
        let mut acc = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseBigUintError { bad_char: c })?;
            acc = &(&acc * &ten) + &BigUint::from(d as u64);
        }
        Ok(acc)
    }

    /// Formats as a decimal string.
    pub fn to_dec(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        // Peel 19 digits at a time (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut n = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !n.is_zero() {
            let (q, r) = n.divrem_u64(CHUNK);
            parts.push(r);
            n = q;
        }
        let mut s = parts.last().unwrap().to_string();
        for p in parts.iter().rev().skip(1) {
            s.push_str(&format!("{p:019}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn bytes_roundtrip() {
        let cases: &[&[u8]] = &[&[], &[1], &[0xff; 9], &[1, 0, 0, 0, 0, 0, 0, 0, 0]];
        for &c in cases {
            let v = BigUint::from_bytes_be(c);
            let back = v.to_bytes_be();
            // Roundtrip strips leading zeros but preserves the value.
            assert_eq!(BigUint::from_bytes_be(&back), v);
        }
    }

    #[test]
    fn bytes_leading_zeros_ignored() {
        assert_eq!(
            BigUint::from_bytes_be(&[0, 0, 1, 2]),
            BigUint::from_bytes_be(&[1, 2])
        );
        assert_eq!(BigUint::from_bytes_be(&[0, 0]), BigUint::zero());
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from(0x0102u64);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 1, 2]);
        assert_eq!(v.to_bytes_be_padded(2), vec![1, 2]);
    }

    #[test]
    #[should_panic]
    fn padded_bytes_too_small_panics() {
        BigUint::from(0x010203u64).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeefcafebabe",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = BigUint::parse_hex(s).unwrap();
            assert_eq!(v.to_hex(), s);
        }
        assert_eq!(BigUint::parse_hex("FF").unwrap(), BigUint::from(255u64));
        assert!(BigUint::parse_hex("xyz").is_err());
    }

    #[test]
    fn dec_roundtrip() {
        for s in [
            "0",
            "7",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
            "99999999999999999999999999999999999999999",
        ] {
            let v = BigUint::parse_dec(s).unwrap();
            assert_eq!(v.to_dec(), s, "roundtrip {s}");
        }
        assert!(BigUint::parse_dec("12a").is_err());
    }

    #[test]
    fn dec_matches_u128() {
        let x = 123_456_789_012_345_678_901_234_567u128;
        assert_eq!(BigUint::from(x).to_dec(), x.to_string());
    }

    #[test]
    fn hex_matches_bytes() {
        let v = BigUint::from_bytes_be(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(v.to_hex(), "deadbeef");
    }
}
