//! `FpMont<LIMBS>`: allocation-free fixed-width Montgomery arithmetic.
//!
//! The dynamic [`Montgomery`](crate::Montgomery) context is correct for
//! any odd modulus, but every hot operation round-trips heap-allocated
//! `Vec<u64>` limb buffers — an allocation, a pointer chase and a
//! length check per multiplication, paid millions of times per market
//! round. This module monomorphizes the same CIOS kernels over a
//! `const LIMBS: usize` width so that residues live in `[u64; LIMBS]`
//! on the stack, loop bounds are compile-time constants and the whole
//! exponentiation ladder runs without touching the allocator.
//!
//! Widths are instantiated for the moduli the protocols actually use
//! (see `Fixed` in `ring.rs`): 1024- and 2048-bit RSA/group moduli
//! (16 / 32 limbs), their CRT halves (8 / 16), the 512-bit bench
//! modulus (8) and the fixture-tower groups (2 / 4). Setup-time odd
//! sizes keep the dynamic path; the split is routed invisibly behind
//! [`ModRing`](crate::ModRing).
//!
//! Allocation discipline, mechanically enforced by
//! `tests/alloc_free.rs` with a counting global allocator:
//!
//! * [`FpMont::mont_mul`], [`FpMont::mont_sqr`], [`FpMont::pow_mont`]:
//!   **zero** heap allocations, always — accumulators, window tables
//!   and scratch are stack arrays.
//! * [`FpMont::multi_pow_n_mont`] (Straus/Pippenger): per-base tables
//!   live in a thread-local scratch arena that is grown once and
//!   reused; a *warmed* call (arena capacity established) performs
//!   zero allocations.
//! * Conversions at the [`BigUint`] boundary (`from_mont`, and
//!   `to_mont` of an unreduced operand) allocate exactly the result —
//!   callers inside the ladder never cross that boundary.

use crate::montgomery::neg_inv_u64;
use crate::BigUint;
use std::cell::RefCell;

/// Window width shared by every 4-bit-digit path in this crate (the
/// fixed-base tables, Straus interleaving and the pow ladders).
pub(crate) const WINDOW_BITS: usize = 4;
pub(crate) const WINDOW_SPAN: usize = 1 << WINDOW_BITS;

/// The `w`-bit digit of `exp` starting at bit `pos`.
#[inline]
pub(crate) fn digit_at(exp: &BigUint, pos: usize, w: usize) -> usize {
    let mut digit = 0usize;
    for b in (0..w).rev() {
        digit <<= 1;
        if exp.bit(pos + b) {
            digit |= 1;
        }
    }
    digit
}

/// Window width for Pippenger bucketing, by base count: wider windows
/// amortize the `2^w` bucket walk over more per-window bucket
/// insertions (one mul per base).
pub(crate) fn pippenger_window(n: usize) -> usize {
    match n {
        0..=15 => 4,
        16..=63 => 5,
        64..=255 => 6,
        256..=1023 => 7,
        _ => 8,
    }
}

thread_local! {
    /// Reusable limb arena for the multi-exponentiation tables. Grown
    /// monotonically; once a thread has run its largest batch shape the
    /// arena never allocates again. One arena serves every `LIMBS`
    /// instantiation (the layouts are flat `u64` runs).
    static SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over a zero-initialized thread-local scratch of `words`
/// limbs, reusing (and if needed growing) the arena. Callers must not
/// re-enter (the multi-exp evaluators are leaf routines).
fn with_scratch<R>(words: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    SCRATCH.with(|s| {
        let mut v = s.borrow_mut();
        if v.len() < words {
            v.resize(words, 0);
        }
        let slice = &mut v[..words];
        slice.fill(0);
        f(slice)
    })
}

/// A Montgomery context for a fixed odd modulus of exactly `LIMBS`
/// 64-bit limbs (most significant limb nonzero). Residues are
/// `[u64; LIMBS]` stack arrays in Montgomery form; the kernels are the
/// same CIOS recurrences as the dynamic backend, so results are
/// bit-identical.
#[derive(Clone, Debug)]
pub struct FpMont<const LIMBS: usize> {
    /// The modulus, little-endian limbs.
    n: [u64; LIMBS],
    /// The modulus as a `BigUint` (boundary comparisons / cold reduce).
    modulus: BigUint,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R mod n` — the Montgomery form of 1 (`R = 2^(64·LIMBS)`).
    r1: [u64; LIMBS],
    /// `R² mod n`, used to enter the Montgomery domain.
    r2: [u64; LIMBS],
}

impl<const LIMBS: usize> FpMont<LIMBS> {
    /// Builds the context, or `None` when the modulus does not fill
    /// exactly `LIMBS` limbs or is even (those stay on the dynamic
    /// path).
    pub fn new(n: &BigUint) -> Option<FpMont<LIMBS>> {
        if LIMBS == 0 || n.limbs().len() != LIMBS || !n.is_odd() || n.is_one() {
            return None;
        }
        let mut nn = [0u64; LIMBS];
        nn.copy_from_slice(n.limbs());
        let r1 = &(BigUint::one() << (64 * LIMBS)) % n;
        let r2 = &(&r1 * &r1) % n;
        Some(FpMont {
            n: nn,
            modulus: n.clone(),
            n_prime: neg_inv_u64(nn[0]),
            r1: to_arr(&r1),
            r2: to_arr(&r2),
        })
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The Montgomery form of 1 (`R mod n`).
    #[inline]
    pub fn one_mont(&self) -> [u64; LIMBS] {
        self.r1
    }

    /// Final CIOS step: the accumulator is `< 2n` with `t_hi ∈ {0, 1}`
    /// as its `LIMBS`-th limb; one conditional subtraction lands it in
    /// `[0, n)`.
    #[inline]
    fn sub_n_if_needed(&self, mut t: [u64; LIMBS], t_hi: u64) -> [u64; LIMBS] {
        let needs_sub = t_hi != 0 || {
            let mut ge = true;
            for j in (0..LIMBS).rev() {
                if t[j] != self.n[j] {
                    ge = t[j] > self.n[j];
                    break;
                }
            }
            ge
        };
        if needs_sub {
            let mut borrow = 0u64;
            for (tj, nj) in t.iter_mut().zip(self.n.iter()) {
                let (d1, b1) = tj.overflowing_sub(*nj);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *tj = d2;
                borrow = (b1 | b2) as u64;
            }
            // t_hi == borrow here: the subtraction consumed the
            // overflow limb and the result is < n.
        }
        t
    }

    /// `a · b · R⁻¹ mod n` for Montgomery residues — interleaved CIOS,
    /// all state on the stack.
    pub fn mont_mul(&self, a: &[u64; LIMBS], b: &[u64; LIMBS]) -> [u64; LIMBS] {
        let mut t = [0u64; LIMBS];
        let mut t_hi = 0u64; // t[LIMBS]
        for &ai in a.iter() {
            // t += aᵢ · b
            let mut carry = 0u128;
            for j in 0..LIMBS {
                let x = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = x as u64;
                carry = x >> 64;
            }
            let x = t_hi as u128 + carry;
            t_hi = x as u64;
            let t_hi2 = (x >> 64) as u64; // t[LIMBS + 1], always 0 or 1

            // m = t[0] · n' mod 2^64;  t = (t + m·n) >> 64
            let m = t[0].wrapping_mul(self.n_prime);
            let x = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = x >> 64;
            for j in 1..LIMBS {
                let x = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = x as u64;
                carry = x >> 64;
            }
            let x = t_hi as u128 + carry;
            t[LIMBS - 1] = x as u64;
            t_hi = t_hi2 + (x >> 64) as u64;
        }
        self.sub_n_if_needed(t, t_hi)
    }

    /// `a² · R⁻¹ mod n`: dedicated squaring (halved partial products)
    /// into a stack double-width buffer, then word-by-word REDC.
    pub fn mont_sqr(&self, a: &[u64; LIMBS]) -> [u64; LIMBS] {
        let mut prod = [[0u64; LIMBS]; 2];
        sqr_into(a, prod.as_flattened_mut());
        self.redc_flat(prod.as_flattened_mut())
    }

    /// Word-by-word Montgomery reduction of a `2·LIMBS`-limb
    /// accumulator (`t < n·R`): computes `t · R⁻¹ mod n` in place, with
    /// the single possible overflow limb held in a scalar.
    fn redc_flat(&self, acc: &mut [u64]) -> [u64; LIMBS] {
        debug_assert_eq!(acc.len(), 2 * LIMBS);
        let mut top = 0u64; // acc[2·LIMBS]
        for i in 0..LIMBS {
            let m = acc[i].wrapping_mul(self.n_prime);
            if m == 0 {
                continue;
            }
            let mut carry = 0u128;
            for j in 0..LIMBS {
                let x = acc[i + j] as u128 + m as u128 * self.n[j] as u128 + carry;
                acc[i + j] = x as u64;
                carry = x >> 64;
            }
            let mut idx = i + LIMBS;
            while carry != 0 {
                if idx < 2 * LIMBS {
                    let x = acc[idx] as u128 + carry;
                    acc[idx] = x as u64;
                    carry = x >> 64;
                    idx += 1;
                } else {
                    top = top.wrapping_add(carry as u64);
                    carry = 0;
                }
            }
        }
        let mut out = [0u64; LIMBS];
        out.copy_from_slice(&acc[LIMBS..]);
        self.sub_n_if_needed(out, top)
    }

    /// Enters the Montgomery domain. Reduced operands (`x < n`, the
    /// steady state of every protocol value) convert without touching
    /// the allocator; wider operands pay one cold `BigUint` reduction.
    pub fn to_mont(&self, x: &BigUint) -> [u64; LIMBS] {
        if x < &self.modulus {
            let mut a = [0u64; LIMBS];
            a[..x.limbs().len()].copy_from_slice(x.limbs());
            self.mont_mul(&a, &self.r2)
        } else {
            let r = x % &self.modulus;
            let mut a = [0u64; LIMBS];
            a[..r.limbs().len()].copy_from_slice(r.limbs());
            self.mont_mul(&a, &self.r2)
        }
    }

    /// Leaves the Montgomery domain, allocating exactly the result.
    pub fn from_mont(&self, x: &[u64; LIMBS]) -> BigUint {
        let mut one = [0u64; LIMBS];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(x, &one).to_vec())
    }

    /// `a · b mod n` through the Montgomery domain (plain residues in,
    /// plain residue out).
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp · R⁻¹·…` — the 4-bit-window ladder over Montgomery
    /// residues: stack window table, zero heap allocations.
    pub fn pow_mont(&self, base: &[u64; LIMBS], exp: &BigUint) -> [u64; LIMBS] {
        if exp.is_zero() {
            return self.r1;
        }
        // table[d] = base^d in Montgomery form.
        let mut table = [[0u64; LIMBS]; WINDOW_SPAN];
        table[0] = self.r1;
        table[1] = *base;
        for d in 2..WINDOW_SPAN {
            table[d] = self.mont_mul(&table[d - 1], base);
        }
        let nwindows = exp.bits().div_ceil(WINDOW_BITS);
        let mut acc = self.r1;
        let mut started = false;
        for w in (0..nwindows).rev() {
            if started {
                for _ in 0..WINDOW_BITS {
                    acc = self.mont_sqr(&acc);
                }
            }
            let digit = digit_at(exp, w * WINDOW_BITS, WINDOW_BITS);
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
                started = true;
            }
        }
        acc
    }

    /// `base^exp mod n` at the `BigUint` boundary.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.from_mont(&self.pow_mont(&self.to_mont(base), exp))
    }

    /// Unbounded simultaneous `∏ baseᵢ^expᵢ` in Montgomery form —
    /// Straus interleaved windows or Pippenger buckets, both on the
    /// thread-local arena. `pairs` must be nonempty.
    pub fn multi_pow_n_mont(&self, pairs: &[(&BigUint, &BigUint)], bucketed: bool) -> [u64; LIMBS] {
        if bucketed {
            self.pippenger_mont(pairs)
        } else {
            self.straus_mont(pairs)
        }
    }

    /// Straus interleaved multi-exponentiation: a 15-entry odd-digit
    /// table per base in the arena, one shared 4-bit squaring chain.
    pub fn straus_mont(&self, pairs: &[(&BigUint, &BigUint)]) -> [u64; LIMBS] {
        debug_assert!(!pairs.is_empty());
        let stride = (WINDOW_SPAN - 1) * LIMBS;
        with_scratch(pairs.len() * stride, |tab| {
            for (i, (base, _)) in pairs.iter().enumerate() {
                let b1 = self.to_mont(base);
                let row = &mut tab[i * stride..(i + 1) * stride];
                row[..LIMBS].copy_from_slice(&b1);
                for d in 2..WINDOW_SPAN {
                    let prev: &[u64; LIMBS] =
                        row[(d - 2) * LIMBS..(d - 1) * LIMBS].try_into().unwrap();
                    let v = self.mont_mul(prev, &b1);
                    row[(d - 1) * LIMBS..d * LIMBS].copy_from_slice(&v);
                }
            }
            let max_bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
            let nwindows = max_bits.div_ceil(WINDOW_BITS);
            let mut acc = self.r1;
            let mut started = false;
            for w in (0..nwindows).rev() {
                if started {
                    for _ in 0..WINDOW_BITS {
                        acc = self.mont_sqr(&acc);
                    }
                }
                for (i, (_, e)) in pairs.iter().enumerate() {
                    let digit = digit_at(e, w * WINDOW_BITS, WINDOW_BITS);
                    if digit != 0 {
                        let entry: &[u64; LIMBS] = tab[i * stride + (digit - 1) * LIMBS..][..LIMBS]
                            .try_into()
                            .unwrap();
                        acc = self.mont_mul(&acc, entry);
                        started = true;
                    }
                }
            }
            acc
        })
    }

    /// Pippenger bucket multi-exponentiation: converted bases and the
    /// `2^w − 1` buckets live in the arena, bucket occupancy in a stack
    /// bitmap, and `∏ bucket_d^d` is assembled with the suffix
    /// running-product walk.
    pub fn pippenger_mont(&self, pairs: &[(&BigUint, &BigUint)]) -> [u64; LIMBS] {
        debug_assert!(!pairs.is_empty());
        let w = pippenger_window(pairs.len());
        let nbuckets = (1usize << w) - 1;
        debug_assert!(nbuckets <= 256, "bitmap covers 256 buckets");
        let nb = pairs.len();
        with_scratch((nb + nbuckets) * LIMBS, |scratch| {
            let (bases, buckets) = scratch.split_at_mut(nb * LIMBS);
            for (i, (base, _)) in pairs.iter().enumerate() {
                let bm = self.to_mont(base);
                bases[i * LIMBS..(i + 1) * LIMBS].copy_from_slice(&bm);
            }
            let max_bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
            let nwindows = max_bits.div_ceil(w);
            let mut acc = self.r1;
            let mut started = false;
            for win in (0..nwindows).rev() {
                if started {
                    for _ in 0..w {
                        acc = self.mont_sqr(&acc);
                    }
                }
                let mut occupied = [0u64; 4];
                for (i, (_, e)) in pairs.iter().enumerate() {
                    let d = digit_at(e, win * w, w);
                    if d != 0 {
                        let bi = d - 1;
                        let slot = bi * LIMBS;
                        let base: &[u64; LIMBS] = bases[i * LIMBS..][..LIMBS].try_into().unwrap();
                        if occupied[bi / 64] >> (bi % 64) & 1 == 1 {
                            let cur: &[u64; LIMBS] = buckets[slot..][..LIMBS].try_into().unwrap();
                            let v = self.mont_mul(cur, base);
                            buckets[slot..slot + LIMBS].copy_from_slice(&v);
                        } else {
                            buckets[slot..slot + LIMBS].copy_from_slice(base);
                            occupied[bi / 64] |= 1 << (bi % 64);
                        }
                    }
                }
                // windowsum = ∏ bucket_d^d via the running suffix
                // product (bucket_d is folded in exactly d times).
                let mut running = [0u64; LIMBS];
                let mut have_running = false;
                let mut windowsum = [0u64; LIMBS];
                let mut have_ws = false;
                for bi in (0..nbuckets).rev() {
                    if occupied[bi / 64] >> (bi % 64) & 1 == 1 {
                        let bucket: &[u64; LIMBS] =
                            buckets[bi * LIMBS..][..LIMBS].try_into().unwrap();
                        running = if have_running {
                            self.mont_mul(&running, bucket)
                        } else {
                            *bucket
                        };
                        have_running = true;
                    }
                    if have_running {
                        windowsum = if have_ws {
                            self.mont_mul(&windowsum, &running)
                        } else {
                            running
                        };
                        have_ws = true;
                    }
                }
                if have_ws {
                    acc = if started {
                        self.mont_mul(&acc, &windowsum)
                    } else {
                        windowsum
                    };
                    started = true;
                }
            }
            if started {
                acc
            } else {
                self.r1
            }
        })
    }

    /// Evaluates a flat fixed-base window table (rows of 15 Montgomery
    /// entries per 4-bit window, built by the ring): one multiplication
    /// per nonzero digit, no squarings, no allocations besides the
    /// result.
    pub fn eval_window_table(&self, flat: &[u64], table_windows: usize, exp: &BigUint) -> BigUint {
        let stride = (WINDOW_SPAN - 1) * LIMBS;
        debug_assert_eq!(flat.len(), table_windows * stride);
        let nwindows = exp.bits().div_ceil(WINDOW_BITS).min(table_windows);
        let mut acc = self.r1;
        for j in 0..nwindows {
            let digit = digit_at(exp, j * WINDOW_BITS, WINDOW_BITS);
            if digit != 0 {
                let entry: &[u64; LIMBS] = flat[j * stride + (digit - 1) * LIMBS..][..LIMBS]
                    .try_into()
                    .unwrap();
                acc = self.mont_mul(&acc, entry);
            }
        }
        self.from_mont(&acc)
    }

    /// Builds the flat fixed-base window table for `base`, sized for
    /// exponents up to `nbits` bits (one allocation, cached by the
    /// ring).
    pub fn build_window_table(&self, base: &BigUint, nbits: usize) -> (usize, Vec<u64>) {
        let stride = (WINDOW_SPAN - 1) * LIMBS;
        let nwindows = nbits.div_ceil(WINDOW_BITS).max(1);
        let mut flat = vec![0u64; nwindows * stride];
        let mut cur = self.to_mont(base); // base^(16^j), advancing j
        for wdx in 0..nwindows {
            let row = &mut flat[wdx * stride..(wdx + 1) * stride];
            row[..LIMBS].copy_from_slice(&cur);
            for d in 2..WINDOW_SPAN {
                let prev: &[u64; LIMBS] = row[(d - 2) * LIMBS..(d - 1) * LIMBS].try_into().unwrap();
                let v = self.mont_mul(prev, &cur);
                row[(d - 1) * LIMBS..d * LIMBS].copy_from_slice(&v);
            }
            let last: &[u64; LIMBS] = row[(WINDOW_SPAN - 2) * LIMBS..(WINDOW_SPAN - 1) * LIMBS]
                .try_into()
                .unwrap();
            cur = self.mont_mul(last, &cur); // ^16
        }
        (nwindows, flat)
    }
}

/// Copies a `BigUint` known to fit into `LIMBS` limbs, zero-padding.
fn to_arr<const LIMBS: usize>(x: &BigUint) -> [u64; LIMBS] {
    debug_assert!(x.limbs().len() <= LIMBS);
    let mut a = [0u64; LIMBS];
    a[..x.limbs().len()].copy_from_slice(x.limbs());
    a
}

/// Schoolbook squaring of `a` into the zeroed double-width buffer
/// `out` (`len == 2·a.len()`): cross products once, doubled by a shift,
/// diagonal added last. No allocations.
fn sqr_into(a: &[u64], out: &mut [u64]) {
    let k = a.len();
    debug_assert_eq!(out.len(), 2 * k);
    debug_assert!(out.iter().all(|&l| l == 0));
    // Cross products a[i]·a[j] for i < j.
    for i in 0..k {
        let ai = a[i];
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for j in (i + 1)..k {
            let x = out[i + j] as u128 + ai as u128 * a[j] as u128 + carry;
            out[i + j] = x as u64;
            carry = x >> 64;
        }
        let mut idx = i + k;
        while carry != 0 {
            let x = out[idx] as u128 + carry;
            out[idx] = x as u64;
            carry = x >> 64;
            idx += 1;
        }
    }
    // Double (2·Σ a_i a_j 2^{64(i+j)} < 2^{128k}, so no carry out).
    let mut carry = 0u64;
    for limb in out.iter_mut() {
        let next = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = next;
    }
    debug_assert_eq!(carry, 0);
    // Diagonal a[i]².
    let mut carry = 0u128;
    for i in 0..k {
        let x = out[2 * i] as u128 + a[i] as u128 * a[i] as u128 + carry;
        out[2 * i] = x as u64;
        let x2 = out[2 * i + 1] as u128 + (x >> 64);
        out[2 * i + 1] = x2 as u64;
        carry = x2 >> 64;
    }
    debug_assert_eq!(carry, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modpow_plain;

    fn n192() -> BigUint {
        BigUint::parse_hex("f123456789abcdef0123456789abcdef0123456789abcdef").unwrap()
    }

    #[test]
    fn new_rejects_wrong_widths() {
        let n = n192(); // 3 limbs
        assert!(FpMont::<3>::new(&n).is_some());
        assert!(FpMont::<2>::new(&n).is_none());
        assert!(FpMont::<4>::new(&n).is_none());
        assert!(FpMont::<3>::new(&(&n + 1u64)).is_none()); // even
    }

    #[test]
    fn mul_and_pow_match_reference() {
        let n = n192();
        let fp = FpMont::<3>::new(&n).unwrap();
        let a = BigUint::parse_hex("deadbeefcafebabe1122334455667788").unwrap();
        let b = BigUint::parse_hex("0102030405060708090a0b0c0d0e0f10").unwrap();
        assert_eq!(fp.mul(&a, &b), (&a * &b) % &n);
        assert_eq!(fp.pow(&a, &b), modpow_plain(&a, &b, &n));
        // Edge exponents / operands.
        assert_eq!(fp.pow(&a, &BigUint::zero()), BigUint::one());
        assert_eq!(fp.pow(&BigUint::zero(), &b), BigUint::zero());
        assert_eq!(fp.pow(&(&n - 1u64), &b), modpow_plain(&(&n - 1u64), &b, &n));
        // Unreduced operands take the cold reduction path.
        let wide = &a + &(&n << 2usize);
        assert_eq!(fp.pow(&wide, &b), modpow_plain(&wide, &b, &n));
    }

    #[test]
    fn sqr_matches_mul() {
        let n = n192();
        let fp = FpMont::<3>::new(&n).unwrap();
        let mut x = BigUint::from(0x9E37_79B9_7F4A_7C15u64);
        for _ in 0..40 {
            let xm = fp.to_mont(&x);
            assert_eq!(fp.mont_sqr(&xm), fp.mont_mul(&xm, &xm), "x = {x:?}");
            x = fp.mul(&x, &BigUint::from(0xDEAD_BEEFu64)) + BigUint::one();
        }
        let zero = [0u64; 3];
        assert_eq!(fp.mont_sqr(&zero), fp.mont_mul(&zero, &zero));
    }

    #[test]
    fn mont_round_trip() {
        let n = n192();
        let fp = FpMont::<3>::new(&n).unwrap();
        for v in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from(0xFFFF_FFFF_FFFFu64),
            &n - 1u64,
        ] {
            assert_eq!(fp.from_mont(&fp.to_mont(&v)), v);
        }
    }

    #[test]
    fn multi_pow_matches_products() {
        let n = n192();
        let fp = FpMont::<3>::new(&n).unwrap();
        let owned: Vec<(BigUint, BigUint)> = (1..9u64)
            .map(|i| {
                (
                    BigUint::from(i * 0x1234_5678_9ABCu64),
                    BigUint::from(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                )
            })
            .collect();
        let pairs: Vec<(&BigUint, &BigUint)> = owned.iter().map(|(b, e)| (b, e)).collect();
        let expect = pairs.iter().fold(BigUint::one(), |acc, (b, e)| {
            (&acc * &modpow_plain(b, e, &n)) % &n
        });
        for bucketed in [false, true] {
            let got = fp.from_mont(&fp.multi_pow_n_mont(&pairs, bucketed));
            assert_eq!(got, expect, "bucketed = {bucketed}");
        }
    }

    #[test]
    fn window_table_build_and_eval() {
        let n = n192();
        let fp = FpMont::<3>::new(&n).unwrap();
        let g = BigUint::from(7u64);
        let (windows, flat) = fp.build_window_table(&g, n.bits());
        for e in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from(16u64),
            &n - 1u64,
        ] {
            assert_eq!(
                fp.eval_window_table(&flat, windows, &e),
                modpow_plain(&g, &e, &n),
                "e = {e:?}"
            );
        }
    }

    #[test]
    fn sqr_into_matches_mul() {
        let a = [0xFFFF_FFFF_FFFF_FFFFu64, 0x1234_5678_9ABC_DEF0, 0xCAFE];
        let mut out = [0u64; 6];
        sqr_into(&a, &mut out);
        let big = BigUint::from_limbs(a.to_vec());
        assert_eq!(BigUint::from_limbs(out.to_vec()), &big * &big);
    }
}
