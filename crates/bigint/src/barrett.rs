//! Barrett reduction: division-free modular reduction for a fixed
//! modulus, the classic alternative to Montgomery arithmetic.
//!
//! Montgomery needs an odd modulus and a domain conversion; Barrett
//! works for any modulus and reduces values directly, which makes it
//! the better choice for one-shot reductions of double-width products.
//! The `ablation_bigint` bench compares the two — Montgomery wins on
//! long exponentiations (this workspace's hot path), Barrett on
//! isolated multiplications.

use crate::BigUint;

/// A reusable Barrett context for modulus `m > 1`.
#[derive(Debug, Clone)]
pub struct Barrett {
    m: BigUint,
    /// `μ = floor(2^(2k) / m)` with `k = bits(m)`.
    mu: BigUint,
    /// `k = bits(m)`.
    k: usize,
}

impl Barrett {
    /// Creates a context. Panics if `m <= 1`.
    pub fn new(m: &BigUint) -> Barrett {
        assert!(m > &BigUint::one(), "Barrett modulus must exceed 1");
        let k = m.bits();
        let mu = &(BigUint::one() << (2 * k)) / m;
        Barrett {
            m: m.clone(),
            mu,
            k,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.m
    }

    /// Reduces `x < m²` to `x mod m` without a division.
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        debug_assert!(x < &(&self.m * &self.m), "Barrett input must be < m^2");
        // q = floor( floor(x / 2^(k-1)) * mu / 2^(k+1) )
        let q = &(&(x >> (self.k - 1)) * &self.mu) >> (self.k + 1);
        let mut r = x - &(&q * &self.m);
        // At most two conditional subtractions.
        while r >= self.m {
            r = &r - &self.m;
        }
        r
    }

    /// `a · b mod m` for `a, b < m`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a < &self.m && b < &self.m);
        self.reduce(&(a * b))
    }

    /// `a² mod m` for `a < m`, through the dedicated squaring kernel.
    pub fn sqr(&self, a: &BigUint) -> BigUint {
        debug_assert!(a < &self.m);
        self.reduce(&a.square())
    }

    /// `base^exp mod m` by square-and-multiply over Barrett products.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let mut acc = &BigUint::one() % &self.m;
        let mut b = base % &self.m;
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i) {
                acc = self.mul(&acc, &b);
            }
            if i + 1 < nbits {
                b = self.sqr(&b);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_below, random_odd_bits, Montgomery};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reduce_matches_rem() {
        let m = BigUint::from(1_000_003u64);
        let br = Barrett::new(&m);
        for x in [0u64, 1, 999_999, 1_000_003, 123_456_789] {
            let x = BigUint::from(x);
            assert_eq!(br.reduce(&x), &x % &m, "x = {x}");
        }
    }

    #[test]
    fn works_for_even_moduli() {
        // Montgomery cannot do this; Barrett can.
        let m = BigUint::from(1u64 << 20);
        let br = Barrett::new(&m);
        let a = BigUint::from(123_456u64);
        let b = BigUint::from(654_321u64);
        assert_eq!(br.mul(&a, &b), (&a * &b) % &m);
        assert_eq!(
            br.modpow(&a, &BigUint::from(10u64)),
            a.modpow(&BigUint::from(10u64), &m)
        );
    }

    #[test]
    fn matches_montgomery_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(0xBA88);
        for _ in 0..10 {
            let m = random_odd_bits(&mut rng, 192);
            let br = Barrett::new(&m);
            let mont = Montgomery::new(&m);
            let a = random_below(&mut rng, &m);
            let b = random_below(&mut rng, &m);
            let e = random_below(&mut rng, &m);
            assert_eq!(br.mul(&a, &b), mont.mul(&a, &b));
            assert_eq!(br.modpow(&a, &e), mont.modpow(&a, &e));
        }
    }

    #[test]
    fn fermat_through_barrett() {
        let p = BigUint::from(1_000_000_007u64);
        let br = Barrett::new(&p);
        assert_eq!(
            br.modpow(&BigUint::from(2u64), &(&p - 1u64)),
            BigUint::one()
        );
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn tiny_modulus_rejected() {
        Barrett::new(&BigUint::one());
    }
}
