//! Euclidean machinery: gcd, extended gcd (signed), lcm, Jacobi symbol.

use crate::{BigInt, BigUint};

/// Greatest common divisor (binary-free Euclid; division is fast here).
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; `lcm(0, x) = 0`.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

/// Extended gcd: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn ext_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut r0 = BigInt::from_biguint(a.clone());
    let mut r1 = BigInt::from_biguint(b.clone());
    let (mut x0, mut x1) = (BigInt::one(), BigInt::zero());
    let (mut y0, mut y1) = (BigInt::zero(), BigInt::one());
    while !r1.is_zero() {
        let (q, r) = r0.divrem_floor(&r1);
        r0 = r1;
        r1 = r;
        let nx = &x0 - &(&q * &x1);
        x0 = x1;
        x1 = nx;
        let ny = &y0 - &(&q * &y1);
        y0 = y1;
        y1 = ny;
    }
    (r0.abs_biguint(), x0, y0)
}

/// Jacobi symbol `(a/n)` for odd positive `n`. Returns `0`, `1` or `-1`.
/// Panics if `n` is even or zero.
pub fn jacobi(a: &BigUint, n: &BigUint) -> i32 {
    assert!(n.is_odd() && !n.is_zero(), "Jacobi symbol needs odd n > 0");
    // Subtraction-based binary algorithm over two reused limb
    // buffers. A shift strips all factors of two at once and the
    // subtract step at least halves the larger operand, so the whole
    // symbol is O(bits) in-place limb passes with exactly two
    // allocations (the working copies). This is the hot path of
    // safe-prime group membership ((x/p) = 1 ⟺ x ∈ QR_p), screened
    // per claim in batch verification.
    let mut a: Vec<u64> = (a % n).limbs().to_vec();
    let mut n: Vec<u64> = n.limbs().to_vec();
    let mut t = 1i32;
    while !limbs_zero(&a) {
        let z = limbs_tz(&a);
        limbs_shr(&mut a, z);
        if z & 1 == 1 {
            let r = n[0] & 7;
            if r == 3 || r == 5 {
                t = -t;
            }
        }
        // Both operands odd now. Reciprocity fires on the swap that
        // restores a ≥ n; the difference of two odd numbers is even,
        // so the next pass shifts again.
        if limbs_cmp(&a, &n) == std::cmp::Ordering::Less {
            std::mem::swap(&mut a, &mut n);
            if a[0] & 3 == 3 && n[0] & 3 == 3 {
                t = -t;
            }
        }
        limbs_sub(&mut a, &n);
    }
    if limbs_one(&n) {
        t
    } else {
        0
    }
}

fn limbs_zero(v: &[u64]) -> bool {
    v.iter().all(|&l| l == 0)
}

fn limbs_one(v: &[u64]) -> bool {
    !v.is_empty() && v[0] == 1 && v[1..].iter().all(|&l| l == 0)
}

/// Trailing zero bits of a nonzero limb vector.
fn limbs_tz(v: &[u64]) -> usize {
    let mut z = 0;
    for &l in v {
        if l == 0 {
            z += 64;
        } else {
            return z + l.trailing_zeros() as usize;
        }
    }
    z
}

/// In-place right shift by `k` bits.
fn limbs_shr(v: &mut [u64], k: usize) {
    let (skip, bits) = (k / 64, k % 64);
    let len = v.len();
    if skip > 0 {
        for i in 0..len {
            v[i] = if i + skip < len { v[i + skip] } else { 0 };
        }
    }
    if bits > 0 {
        let mut carry = 0u64;
        for x in v.iter_mut().rev() {
            let next = *x << (64 - bits);
            *x = (*x >> bits) | carry;
            carry = next;
        }
    }
}

/// Compare two limb vectors of possibly different lengths.
fn limbs_cmp(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    for i in (0..a.len().max(b.len())).rev() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        if x != y {
            return x.cmp(&y);
        }
    }
    std::cmp::Ordering::Equal
}

/// `a -= b`, requiring `a >= b`.
fn limbs_sub(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, x) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, u1) = x.overflowing_sub(bi);
        let (d2, u2) = d1.overflowing_sub(borrow);
        *x = d2;
        borrow = (u1 | u2) as u64;
    }
    debug_assert_eq!(borrow, 0, "limbs_sub underflow: a < b");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&b(12), &b(18)), b(6));
        assert_eq!(gcd(&b(17), &b(31)), b(1));
        assert_eq!(gcd(&b(0), &b(5)), b(5));
        assert_eq!(gcd(&b(5), &b(0)), b(5));
        assert_eq!(gcd(&b(0), &b(0)), b(0));
    }

    #[test]
    fn gcd_large() {
        let a = BigUint::parse_dec("123456789123456789123456789").unwrap();
        let c = BigUint::from(999983u64); // prime
        let x = &a * &c;
        let y = &b(424242) * &c;
        assert_eq!(&gcd(&x, &y) % &c, BigUint::zero());
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(&b(4), &b(6)), b(12));
        assert_eq!(lcm(&b(0), &b(9)), b(0));
        assert_eq!(lcm(&b(7), &b(13)), b(91));
    }

    #[test]
    fn ext_gcd_bezout() {
        for (x, y) in [(240u64, 46u64), (17, 31), (100, 75), (1, 1), (999983, 2)] {
            let (g, s, t) = ext_gcd(&b(x), &b(y));
            assert_eq!(g, gcd(&b(x), &b(y)), "gcd mismatch for {x},{y}");
            let lhs = &(&BigInt::from_biguint(b(x)) * &s) + &(&BigInt::from_biguint(b(y)) * &t);
            assert_eq!(lhs, BigInt::from_biguint(g), "Bezout for {x},{y}");
        }
    }

    #[test]
    fn jacobi_known_values() {
        // (a/7): QRs mod 7 are {1,2,4}.
        assert_eq!(jacobi(&b(1), &b(7)), 1);
        assert_eq!(jacobi(&b(2), &b(7)), 1);
        assert_eq!(jacobi(&b(3), &b(7)), -1);
        assert_eq!(jacobi(&b(4), &b(7)), 1);
        assert_eq!(jacobi(&b(5), &b(7)), -1);
        assert_eq!(jacobi(&b(6), &b(7)), -1);
        assert_eq!(jacobi(&b(7), &b(7)), 0);
        // Composite lower argument: (2/15) = (2/3)(2/5) = (-1)(-1) = 1.
        assert_eq!(jacobi(&b(2), &b(15)), 1);
        // (1001/9907) = -1 (classic textbook example).
        assert_eq!(jacobi(&b(1001), &b(9907)), -1);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn jacobi_even_n_panics() {
        jacobi(&b(3), &b(8));
    }

    #[test]
    fn jacobi_matches_euler_criterion_on_a_prime() {
        // For odd prime p, (a/p) ≡ a^((p-1)/2) (mod p). Exercises the
        // limb machinery on multi-limb operands (p is 89 bits).
        let p = BigUint::parse_dec("618970019642690137449562111").unwrap();
        let e = &(&p - 1u64) >> 1usize;
        for seed in 1u64..40 {
            let a = BigUint::from(seed.wrapping_mul(0x9E3779B97F4A7C15));
            let pow = crate::modular::modpow_plain(&(&a % &p), &e, &p);
            let expect = if pow.is_zero() {
                0
            } else if pow.is_one() {
                1
            } else {
                -1
            };
            assert_eq!(jacobi(&a, &p), expect, "seed {seed}");
        }
    }

    #[test]
    fn jacobi_multiplicative_in_lower_argument() {
        // (ab/n) = (a/n)(b/n) for odd composite n, across limb widths.
        let n = BigUint::parse_dec("364808831468848405003757568104202675623").unwrap();
        for i in 1u64..30 {
            let a = BigUint::from(i).square() + BigUint::from(i * 7 + 1);
            let c = &BigUint::from(0xDEADBEEFu64) + &BigUint::from(i);
            let ab = &a * &c;
            assert_eq!(jacobi(&ab, &n), jacobi(&a, &n) * jacobi(&c, &n), "i={i}");
        }
    }

    #[test]
    fn jacobi_zero_and_unit_modulus() {
        assert_eq!(jacobi(&BigUint::zero(), &b(1)), 1);
        assert_eq!(jacobi(&b(5), &b(1)), 1);
        assert_eq!(jacobi(&BigUint::zero(), &b(9)), 0);
        assert_eq!(jacobi(&b(9), &b(9)), 0);
    }
}
