//! Euclidean machinery: gcd, extended gcd (signed), lcm, Jacobi symbol.

use crate::{BigInt, BigUint};

/// Greatest common divisor (binary-free Euclid; division is fast here).
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; `lcm(0, x) = 0`.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

/// Extended gcd: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn ext_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut r0 = BigInt::from_biguint(a.clone());
    let mut r1 = BigInt::from_biguint(b.clone());
    let (mut x0, mut x1) = (BigInt::one(), BigInt::zero());
    let (mut y0, mut y1) = (BigInt::zero(), BigInt::one());
    while !r1.is_zero() {
        let (q, r) = r0.divrem_floor(&r1);
        r0 = r1;
        r1 = r;
        let nx = &x0 - &(&q * &x1);
        x0 = x1;
        x1 = nx;
        let ny = &y0 - &(&q * &y1);
        y0 = y1;
        y1 = ny;
    }
    (r0.abs_biguint(), x0, y0)
}

/// Jacobi symbol `(a/n)` for odd positive `n`. Returns `0`, `1` or `-1`.
/// Panics if `n` is even or zero.
pub fn jacobi(a: &BigUint, n: &BigUint) -> i32 {
    assert!(n.is_odd() && !n.is_zero(), "Jacobi symbol needs odd n > 0");
    let mut a = a % n;
    let mut n = n.clone();
    let mut result = 1i32;
    while !a.is_zero() {
        while a.is_even() {
            a = &a >> 1usize;
            let r = (&n % 8u64) as u32;
            if r == 3 || r == 5 {
                result = -result;
            }
        }
        std::mem::swap(&mut a, &mut n);
        if (&a % 4u64) == 3 && (&n % 4u64) == 3 {
            result = -result;
        }
        a = &a % &n;
    }
    if n.is_one() {
        result
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&b(12), &b(18)), b(6));
        assert_eq!(gcd(&b(17), &b(31)), b(1));
        assert_eq!(gcd(&b(0), &b(5)), b(5));
        assert_eq!(gcd(&b(5), &b(0)), b(5));
        assert_eq!(gcd(&b(0), &b(0)), b(0));
    }

    #[test]
    fn gcd_large() {
        let a = BigUint::parse_dec("123456789123456789123456789").unwrap();
        let c = BigUint::from(999983u64); // prime
        let x = &a * &c;
        let y = &b(424242) * &c;
        assert_eq!(&gcd(&x, &y) % &c, BigUint::zero());
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(&b(4), &b(6)), b(12));
        assert_eq!(lcm(&b(0), &b(9)), b(0));
        assert_eq!(lcm(&b(7), &b(13)), b(91));
    }

    #[test]
    fn ext_gcd_bezout() {
        for (x, y) in [(240u64, 46u64), (17, 31), (100, 75), (1, 1), (999983, 2)] {
            let (g, s, t) = ext_gcd(&b(x), &b(y));
            assert_eq!(g, gcd(&b(x), &b(y)), "gcd mismatch for {x},{y}");
            let lhs = &(&BigInt::from_biguint(b(x)) * &s) + &(&BigInt::from_biguint(b(y)) * &t);
            assert_eq!(lhs, BigInt::from_biguint(g), "Bezout for {x},{y}");
        }
    }

    #[test]
    fn jacobi_known_values() {
        // (a/7): QRs mod 7 are {1,2,4}.
        assert_eq!(jacobi(&b(1), &b(7)), 1);
        assert_eq!(jacobi(&b(2), &b(7)), 1);
        assert_eq!(jacobi(&b(3), &b(7)), -1);
        assert_eq!(jacobi(&b(4), &b(7)), 1);
        assert_eq!(jacobi(&b(5), &b(7)), -1);
        assert_eq!(jacobi(&b(6), &b(7)), -1);
        assert_eq!(jacobi(&b(7), &b(7)), 0);
        // Composite lower argument: (2/15) = (2/3)(2/5) = (-1)(-1) = 1.
        assert_eq!(jacobi(&b(2), &b(15)), 1);
        // (1001/9907) = -1 (classic textbook example).
        assert_eq!(jacobi(&b(1001), &b(9907)), -1);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn jacobi_even_n_panics() {
        jacobi(&b(3), &b(8));
    }
}
