//! Property-based tests for the [`ModRing`] cached-exponentiation
//! layer, cross-checked against the naive square-and-multiply
//! reference `modpow_plain`. Every acceleration path is pinned to the
//! reference: plain `pow` on both backends (Montgomery for odd moduli,
//! Barrett for even), the fixed-base window tables, the CRT split, and
//! the Shamir simultaneous multi-exponentiation.

use ppms_bigint::{modpow_plain, BigUint, ModRing, RsaCrt};
use proptest::prelude::*;

/// Strategy: a BigUint from 0..4 random limbs (up to 192 bits).
fn big() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..4).prop_map(BigUint::from_limbs)
}

/// Strategy: an odd modulus `> 1` (selects the Montgomery backend).
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 1..4).prop_map(|mut limbs| {
        limbs[0] |= 1;
        let n = BigUint::from_limbs(limbs);
        if n.is_one() {
            BigUint::from(3u64)
        } else {
            n
        }
    })
}

/// Strategy: an even modulus `> 1` (selects the Barrett backend).
fn even_modulus() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 1..4).prop_map(|mut limbs| {
        limbs[0] &= !1;
        let n = BigUint::from_limbs(limbs);
        if n.is_zero() {
            BigUint::from(4u64)
        } else {
            n
        }
    })
}

/// Distinct primes for the CRT property (moduli `n = p·q`).
const PRIMES: [u64; 6] = [
    1_000_000_007,
    1_000_000_009,
    2_147_483_647,
    4_294_967_291,
    67_280_421_310_721,
    2_305_843_009_213_693_951,
];

proptest! {
    #[test]
    fn pow_matches_reference_odd(m in odd_modulus(), base in big(), exp in big()) {
        let ring = ModRing::new(&m);
        prop_assert_eq!(ring.pow(&base, &exp), modpow_plain(&base, &exp, &m));
    }

    #[test]
    fn pow_matches_reference_even(m in even_modulus(), base in big(), exp in big()) {
        let ring = ModRing::new(&m);
        prop_assert_eq!(ring.pow(&base, &exp), modpow_plain(&base, &exp, &m));
    }

    #[test]
    fn pow_fixed_matches_pow_odd(m in odd_modulus(), base in big(), exp in big()) {
        let ring = ModRing::new(&m);
        ring.register_base(&base);
        prop_assert_eq!(ring.pow_fixed(&base, &exp), ring.pow(&base, &exp));
    }

    #[test]
    fn pow_fixed_matches_pow_even(m in even_modulus(), base in big(), exp in big()) {
        let ring = ModRing::new(&m);
        ring.register_base(&base);
        prop_assert_eq!(ring.pow_fixed(&base, &exp), ring.pow(&base, &exp));
    }

    #[test]
    fn pow_fixed_unregistered_falls_back(m in odd_modulus(), base in big(), exp in big()) {
        let ring = ModRing::new(&m);
        // No register_base: silent fallback to plain pow.
        prop_assert_eq!(ring.pow_fixed(&base, &exp), modpow_plain(&base, &exp, &m));
    }

    #[test]
    fn multi_pow_matches_product_of_single_pows(
        m in odd_modulus(),
        b1 in big(), e1 in big(),
        b2 in big(), e2 in big(),
        b3 in big(), e3 in big(),
    ) {
        let ring = ModRing::new(&m);
        let expect = ring.mul(
            &ring.mul(&ring.pow(&b1, &e1), &ring.pow(&b2, &e2)),
            &ring.pow(&b3, &e3),
        );
        prop_assert_eq!(ring.multi_pow(&[(&b1, &e1), (&b2, &e2), (&b3, &e3)]), expect);
    }

    #[test]
    fn multi_pow_n_matches_product_of_single_pows(
        m in odd_modulus(),
        pairs in prop::collection::vec((big(), big()), 0..40),
    ) {
        let ring = ModRing::new(&m);
        let refs: Vec<(&BigUint, &BigUint)> = pairs.iter().map(|(b, e)| (b, e)).collect();
        let expect = refs.iter().fold(ring.reduce(&BigUint::one()), |acc, (b, e)| {
            ring.mul(&acc, &ring.pow(b, e))
        });
        prop_assert_eq!(ring.multi_pow_n(&refs), expect.clone());
        // Both algorithms must agree regardless of the dispatch point.
        prop_assert_eq!(ring.multi_pow_n_straus(&refs), expect.clone());
        prop_assert_eq!(ring.multi_pow_n_pippenger(&refs), expect);
    }

    #[test]
    fn multi_pow_n_matches_product_even_modulus(
        m in even_modulus(),
        pairs in prop::collection::vec((big(), big()), 0..10),
    ) {
        let ring = ModRing::new(&m);
        let refs: Vec<(&BigUint, &BigUint)> = pairs.iter().map(|(b, e)| (b, e)).collect();
        let expect = refs.iter().fold(ring.reduce(&BigUint::one()), |acc, (b, e)| {
            ring.mul(&acc, &ring.pow(b, e))
        });
        prop_assert_eq!(ring.multi_pow_n(&refs), expect);
    }

    #[test]
    fn batch_inv_matches_per_element_modinv(
        m in odd_modulus(),
        xs in prop::collection::vec(big(), 0..20),
    ) {
        let ring = ModRing::new(&m);
        let got = ring.batch_inv(&xs);
        prop_assert_eq!(got.len(), xs.len());
        for (x, inv) in xs.iter().zip(&got) {
            prop_assert_eq!(inv, &x.modinv(&m));
        }
    }

    #[test]
    fn batch_inv_matches_per_element_modinv_even(
        m in even_modulus(),
        xs in prop::collection::vec(big(), 0..20),
    ) {
        // Even moduli make non-invertible elements common, forcing the
        // element-wise fallback path often.
        let ring = ModRing::new(&m);
        for (x, inv) in xs.iter().zip(&ring.batch_inv(&xs)) {
            prop_assert_eq!(inv, &x.modinv(&m));
        }
    }

    #[test]
    fn square_matches_self_mul(a in big()) {
        prop_assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn pow_crt_matches_plain_exponent(
        pi in 0usize..6,
        qoff in 0usize..5,
        base in big(),
        draw in big(),
    ) {
        let p = BigUint::from(PRIMES[pi]);
        let q = BigUint::from(PRIMES[(pi + 1 + qoff) % 6]);
        let n = &p * &q;
        let phi = &(&p - &BigUint::one()) * &(&q - &BigUint::one());
        // d in [1, phi-1], as an RSA secret exponent would be.
        let d = &(&draw % &(&phi - &BigUint::one())) + &BigUint::one();
        let crt = RsaCrt::new(&p, &q, &d);
        let ring = ModRing::new(&n);
        prop_assert_eq!(ring.pow_crt(&base, &crt), modpow_plain(&base, &d, &n));
        prop_assert_eq!(crt.pow_secret(&base), modpow_plain(&base, &d, &n));
    }
}
