//! Property-based tests for `ppms-bigint`, cross-checked against `u128`
//! reference arithmetic and against algebraic identities on large values.

use ppms_bigint::{ext_gcd, gcd, jacobi, Barrett, BigInt, BigUint};
use proptest::prelude::*;

/// Strategy: a BigUint from 0..4 random limbs (up to 256 bits).
fn big() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..4).prop_map(BigUint::from_limbs)
}

/// Strategy: a nonzero BigUint.
fn big_nonzero() -> impl Strategy<Value = BigUint> {
    big().prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let s = BigUint::from(a) + BigUint::from(b);
        prop_assert_eq!(s.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = BigUint::from(a) * BigUint::from(b);
        prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn add_commutative(a in big(), b in big()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in big(), b in big(), c in big()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in big(), b in big()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in big(), b in big(), c in big()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in big(), b in big()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn divrem_reconstructs(a in big(), b in big_nonzero()) {
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_roundtrip(a in big(), n in 0usize..300) {
        prop_assert_eq!(&(&a << n) >> n, a);
    }

    #[test]
    fn shl_is_mul_by_pow2(a in big(), n in 0usize..130) {
        prop_assert_eq!(&a << n, &a * &(BigUint::one() << n));
    }

    #[test]
    fn bytes_roundtrip(a in big()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn dec_roundtrip(a in big()) {
        prop_assert_eq!(BigUint::parse_dec(&a.to_dec()).unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in big()) {
        prop_assert_eq!(BigUint::parse_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn karatsuba_equals_schoolbook(
        av in prop::collection::vec(any::<u64>(), 0..80),
        bv in prop::collection::vec(any::<u64>(), 0..80),
    ) {
        let a = BigUint::from_limbs(av);
        let b = BigUint::from_limbs(bv);
        prop_assert_eq!(
            ppms_bigint::mul_karatsuba_pub(&a, &b),
            ppms_bigint::mul_schoolbook_pub(&a, &b)
        );
    }

    #[test]
    fn modpow_montgomery_matches_plain(a in big(), e in big(), mv in prop::collection::vec(any::<u64>(), 1..3)) {
        let mut m = BigUint::from_limbs(mv);
        m.set_bit(0, true); // make odd
        if m.is_one() { m = BigUint::from(3u64); }
        prop_assert_eq!(a.modpow(&e, &m), ppms_bigint::modpow_plain(&a, &e, &m));
    }

    #[test]
    fn modpow_exponent_addition(a in big(), e1 in any::<u64>(), e2 in any::<u64>(), mv in prop::collection::vec(any::<u64>(), 1..3)) {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let mut m = BigUint::from_limbs(mv);
        m.set_bit(0, true);
        if m.is_one() { m = BigUint::from(5u64); }
        let lhs = a.modpow(&(BigUint::from(e1) + BigUint::from(e2)), &m);
        let rhs = a.modpow(&BigUint::from(e1), &m).modmul(&a.modpow(&BigUint::from(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn gcd_divides_both(a in big_nonzero(), b in big_nonzero()) {
        let g = gcd(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn ext_gcd_bezout(a in big_nonzero(), b in big_nonzero()) {
        let (g, x, y) = ext_gcd(&a, &b);
        let lhs = &(&BigInt::from_biguint(a.clone()) * &x) + &(&BigInt::from_biguint(b.clone()) * &y);
        prop_assert_eq!(lhs, BigInt::from_biguint(g));
    }

    #[test]
    fn modinv_is_inverse(a in big_nonzero(), mv in prop::collection::vec(any::<u64>(), 1..3)) {
        let mut m = BigUint::from_limbs(mv);
        m.set_bit(0, true);
        if m.is_one() { m = BigUint::from(7u64); }
        if let Some(inv) = a.modinv(&m) {
            prop_assert_eq!(a.modmul(&inv, &m), &BigUint::one() % &m);
        } else {
            prop_assert!(!gcd(&a, &m).is_one());
        }
    }

    #[test]
    fn jacobi_multiplicative(a in any::<u64>(), b in any::<u64>(), n in any::<u32>()) {
        // (ab/n) = (a/n)(b/n) for odd n
        let n = BigUint::from((n as u64) | 1);
        if n.is_one() { return Ok(()); }
        let ja = jacobi(&BigUint::from(a), &n);
        let jb = jacobi(&BigUint::from(b), &n);
        let jab = jacobi(&(BigUint::from(a) * BigUint::from(b)), &n);
        prop_assert_eq!(jab, ja * jb);
    }

    #[test]
    fn barrett_matches_dispatching_modpow(a in big(), e in any::<u64>(), mv in prop::collection::vec(any::<u64>(), 1..3)) {
        let mut m = BigUint::from_limbs(mv);
        if m <= BigUint::one() { m = BigUint::from(97u64); }
        let br = Barrett::new(&m);
        let e = BigUint::from(e);
        prop_assert_eq!(br.modpow(&a, &e), a.modpow(&e, &m));
    }

    #[test]
    fn barrett_reduce_matches_rem(av in prop::collection::vec(any::<u64>(), 0..3), mv in prop::collection::vec(any::<u64>(), 1..3)) {
        let mut m = BigUint::from_limbs(mv);
        if m <= BigUint::one() { m = BigUint::from(97u64); }
        let a = &BigUint::from_limbs(av) % &(&m * &m); // Barrett precondition: x < m^2
        let br = Barrett::new(&m);
        prop_assert_eq!(br.reduce(&a), &a % &m);
    }

    #[test]
    fn cmp_consistent_with_sub(a in big(), b in big()) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }
}
