//! Mechanical proof of the fixed-width core's allocation discipline:
//! a counting global allocator wraps [`std::alloc::System`] and the
//! tests assert a **zero** heap-allocation count inside the hot
//! kernels — `mont_mul` / `mont_sqr` / `pow_mont` always, and the
//! Straus/Pippenger `multi_pow_n_mont` evaluators once the
//! thread-local scratch arena is warmed. At the `ModRing` boundary a
//! warmed `pow` is pinned to exactly one allocation: the result
//! `BigUint` itself.
//!
//! The counter is a `const`-initialized `thread_local!` `Cell` — no
//! lazy initialization and no drop registration, so bumping it from
//! inside `GlobalAlloc` cannot recurse. Counting is gated per thread
//! so the allocator stays honest under parallel test threads.

use ppms_bigint::{BigUint, FpMont, ModRing};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed by `f` on this thread (growth only:
/// `alloc` + `realloc`; frees are not counted).
fn allocs_in(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

/// Deterministic odd modulus of exactly `limbs` limbs (top bit set),
/// plus a base and an exponent of the same width.
fn fixture(limbs: usize) -> (BigUint, BigUint, BigUint) {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut n: Vec<u64> = (0..limbs).map(|_| next()).collect();
    n[0] |= 1;
    n[limbs - 1] |= 1 << 63;
    let base: Vec<u64> = (0..limbs).map(|_| next()).collect();
    let exp: Vec<u64> = (0..limbs).map(|_| next()).collect();
    (
        BigUint::from_limbs(n),
        BigUint::from_limbs(base),
        BigUint::from_limbs(exp),
    )
}

fn assert_kernels_allocation_free<const LIMBS: usize>() {
    let (n, base, exp) = fixture(LIMBS);
    let fp = FpMont::<LIMBS>::new(&n).expect("exact-width odd modulus");
    let base = &base % &n;
    let am = fp.to_mont(&base);

    assert_eq!(
        allocs_in(|| {
            black_box(fp.mont_mul(black_box(&am), black_box(&am)));
        }),
        0,
        "mont_mul allocated"
    );
    assert_eq!(
        allocs_in(|| {
            black_box(fp.mont_sqr(black_box(&am)));
        }),
        0,
        "mont_sqr allocated"
    );
    // to_mont of a reduced operand stays on the stack.
    assert_eq!(
        allocs_in(|| {
            black_box(fp.to_mont(black_box(&base)));
        }),
        0,
        "to_mont of reduced operand allocated"
    );
    // The full-width pow ladder: window table and accumulator are all
    // stack arrays — zero allocations, no warmup needed.
    assert_eq!(
        allocs_in(|| {
            black_box(fp.pow_mont(black_box(&am), black_box(&exp)));
        }),
        0,
        "pow_mont allocated"
    );
}

#[test]
fn kernels_allocation_free_1024() {
    assert_kernels_allocation_free::<16>();
}

#[test]
fn kernels_allocation_free_2048() {
    assert_kernels_allocation_free::<32>();
}

fn assert_multi_pow_warmed_allocation_free<const LIMBS: usize>(npairs: usize) {
    let (n, _, _) = fixture(LIMBS);
    let fp = FpMont::<LIMBS>::new(&n).expect("exact-width odd modulus");
    let mut state = 0xdead_beef_cafe_f00du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let bases: Vec<BigUint> = (0..npairs)
        .map(|_| &BigUint::from_limbs((0..LIMBS).map(|_| next()).collect()) % &n)
        .collect();
    let exps: Vec<BigUint> = (0..npairs)
        .map(|_| BigUint::from_limbs((0..LIMBS).map(|_| next()).collect()))
        .collect();
    let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(exps.iter()).collect();

    // Warm the thread-local arena (first call may grow it).
    black_box(fp.straus_mont(&pairs));
    black_box(fp.pippenger_mont(&pairs));

    assert_eq!(
        allocs_in(|| {
            black_box(fp.straus_mont(black_box(&pairs)));
        }),
        0,
        "warmed straus_mont allocated"
    );
    assert_eq!(
        allocs_in(|| {
            black_box(fp.pippenger_mont(black_box(&pairs)));
        }),
        0,
        "warmed pippenger_mont allocated"
    );
}

#[test]
fn multi_pow_n_warmed_allocation_free_1024() {
    assert_multi_pow_warmed_allocation_free::<16>(8);
}

#[test]
fn multi_pow_n_warmed_allocation_free_2048() {
    assert_multi_pow_warmed_allocation_free::<32>(4);
}

/// At the `ModRing` boundary the only unavoidable allocation is the
/// result `BigUint` handed back to the caller (`from_mont` collects
/// the limbs into a fresh `Vec`). A warmed 1024-bit `pow` is pinned to
/// exactly that one allocation — the ladder itself touches nothing.
#[test]
fn ring_pow_allocates_only_the_result() {
    let (n, base, exp) = fixture(16);
    let ring = ModRing::new(&n);
    assert!(
        ring.has_fixed_width(),
        "16-limb modulus must be fixed-width"
    );
    let base = ring.reduce(&base);
    // Warm the call site: resolves the obs histogram handle once.
    black_box(ring.pow(&base, &exp));
    assert_eq!(
        allocs_in(|| {
            black_box(ring.pow(black_box(&base), black_box(&exp)));
        }),
        1,
        "warmed ModRing::pow must allocate exactly the result BigUint"
    );
}
