//! Property tests pinning the fixed-width [`FpMont`] backend to the
//! dynamic `Vec<u64>` path it replaced, at the protocol widths
//! (16 limbs / 1024 bits and 32 limbs / 2048 bits). Every routed
//! operation must be *bit-identical* across the two backends: `pow`
//! vs [`ModRing::pow_dynamic`], `multi_pow_n` (Straus, Pippenger and
//! the cost-model dispatch) vs [`ModRing::multi_pow_n_dynamic`],
//! `multi_pow` and `batch_inv` vs first principles, and the Montgomery
//! domain round-trip vs the identity. Edge operands (0, 1, p−1, and
//! unreduced values ≥ p) are driven explicitly alongside the random
//! ones.

use ppms_bigint::{modpow_plain, BigUint, FpMont, ModRing};
use proptest::prelude::*;

/// Strategy: an odd modulus of *exactly* `limbs` limbs (top bit set so
/// the width cannot collapse), i.e. one that lands on the monomorphized
/// fixed-width backend.
fn exact_width_modulus(limbs: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), limbs).prop_map(|mut v| {
        let top = v.len() - 1;
        v[0] |= 1;
        v[top] |= 1 << 63;
        BigUint::from_limbs(v)
    })
}

/// Strategy: a protocol-width modulus — 16 limbs (1024-bit) or
/// 32 limbs (2048-bit), covering both `FpMont` instantiations the
/// protocols exercise.
fn protocol_modulus() -> impl Strategy<Value = BigUint> {
    any::<bool>().prop_flat_map(|wide| exact_width_modulus(if wide { 32 } else { 16 }))
}

/// Strategy: an operand biased toward the edges — 0, 1, and offsets
/// that the test maps to p−1 / p / p+1 — plus random values up to a
/// little wider than the modulus (exercising the unreduced path).
fn operand() -> impl Strategy<Value = Operand> {
    (any::<u64>(), prop::collection::vec(any::<u64>(), 0..34)).prop_map(|(tag, limbs)| {
        match tag % 8 {
            0 => Operand::Zero,
            1 => Operand::One,
            2 => Operand::PMinus1,
            3 => Operand::P,
            4 => Operand::PPlus1,
            _ => Operand::Random(limbs),
        }
    })
}

#[derive(Clone, Debug)]
enum Operand {
    Zero,
    One,
    PMinus1,
    P,
    PPlus1,
    Random(Vec<u64>),
}

impl Operand {
    fn value(&self, p: &BigUint) -> BigUint {
        match self {
            Operand::Zero => BigUint::zero(),
            Operand::One => BigUint::one(),
            Operand::PMinus1 => p - &BigUint::one(),
            Operand::P => p.clone(),
            Operand::PPlus1 => p + &BigUint::one(),
            Operand::Random(limbs) => BigUint::from_limbs(limbs.clone()),
        }
    }
}

proptest! {
    // Full-width operands make each case a real 1024/2048-bit ladder;
    // keep the case count low enough for the ci-gate smoke budget.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `pow` (fixed-width) ≡ `pow_dynamic` (heap-`Vec` Montgomery),
    // including the edge operands on both sides of the reduction
    // boundary.
    #[test]
    fn pow_fixed_matches_dynamic(m in protocol_modulus(), b in operand(), e in operand()) {
        let ring = ModRing::new(&m);
        prop_assert!(ring.has_fixed_width());
        let base = b.value(&m);
        let exp = e.value(&m);
        prop_assert_eq!(ring.pow(&base, &exp), ring.pow_dynamic(&base, &exp));
    }

    // The fixed-width backend against the naive square-and-multiply
    // reference (shorter exponents keep the reference affordable).
    #[test]
    fn pow_fixed_matches_plain_reference(
        m in protocol_modulus(),
        b in operand(),
        e in prop::collection::vec(any::<u64>(), 0..2),
    ) {
        let ring = ModRing::new(&m);
        let base = b.value(&m);
        let exp = BigUint::from_limbs(e);
        prop_assert_eq!(ring.pow(&base, &exp), modpow_plain(&base, &exp, &m));
    }

    // `multi_pow_n` on the fixed-width kernels ≡ the dynamic path,
    // for Straus, Pippenger and the cost-model dispatch alike.
    #[test]
    fn multi_pow_n_fixed_matches_dynamic(
        m in exact_width_modulus(16),
        pairs in prop::collection::vec((operand(), operand()), 0..8),
    ) {
        let ring = ModRing::new(&m);
        let vals: Vec<(BigUint, BigUint)> =
            pairs.iter().map(|(b, e)| (b.value(&m), e.value(&m))).collect();
        let refs: Vec<(&BigUint, &BigUint)> = vals.iter().map(|(b, e)| (b, e)).collect();
        let expect = ring.multi_pow_n_dynamic(&refs);
        prop_assert_eq!(ring.multi_pow_n(&refs), expect.clone());
        prop_assert_eq!(ring.multi_pow_n_straus(&refs), expect.clone());
        prop_assert_eq!(ring.multi_pow_n_pippenger(&refs), expect);
    }

    // Same equivalence at the 2048-bit width (fewer, smaller batches —
    // each case is ~32× the limb work of the small-ring proptests).
    #[test]
    fn multi_pow_n_fixed_matches_dynamic_2048(
        m in exact_width_modulus(32),
        pairs in prop::collection::vec((operand(), operand()), 0..4),
    ) {
        let ring = ModRing::new(&m);
        let vals: Vec<(BigUint, BigUint)> =
            pairs.iter().map(|(b, e)| (b.value(&m), e.value(&m))).collect();
        let refs: Vec<(&BigUint, &BigUint)> = vals.iter().map(|(b, e)| (b, e)).collect();
        let expect = ring.multi_pow_n_dynamic(&refs);
        prop_assert_eq!(ring.multi_pow_n(&refs), expect.clone());
        prop_assert_eq!(ring.multi_pow_n_straus(&refs), expect.clone());
        prop_assert_eq!(ring.multi_pow_n_pippenger(&refs), expect);
    }

}

proptest! {
    // Full-width operands make each case a real 1024/2048-bit ladder;
    // keep the case count low enough for the ci-gate smoke budget.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Shamir `multi_pow` on the fixed-width kernels against the
    // product of independent `pow_dynamic` calls.
    #[test]
    fn multi_pow_fixed_matches_product(
        m in protocol_modulus(),
        b1 in operand(), e1 in operand(),
        b2 in operand(), e2 in operand(),
    ) {
        let ring = ModRing::new(&m);
        let (b1, e1, b2, e2) = (b1.value(&m), e1.value(&m), b2.value(&m), e2.value(&m));
        let expect = ring.mul(&ring.pow_dynamic(&b1, &e1), &ring.pow_dynamic(&b2, &e2));
        prop_assert_eq!(ring.multi_pow(&[(&b1, &e1), (&b2, &e2)]), expect);
    }

    // Fixed-base window tables built and evaluated by the fixed-width
    // backend agree with plain `pow`.
    #[test]
    fn pow_fixed_base_tables_match_pow(
        m in protocol_modulus(),
        b in operand(),
        e in operand(),
    ) {
        let ring = ModRing::new(&m);
        let base = b.value(&m);
        let exp = e.value(&m);
        ring.register_base(&base);
        prop_assert_eq!(ring.pow_fixed(&base, &exp), ring.pow(&base, &exp));
    }

}

proptest! {
    // Full-width operands make each case a real 1024/2048-bit ladder;
    // keep the case count low enough for the ci-gate smoke budget.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `batch_inv` (whose internal products route through the
    // fixed-width `mul`) against per-element `modinv`.
    #[test]
    fn batch_inv_fixed_matches_modinv(
        m in exact_width_modulus(16),
        xs in prop::collection::vec(operand(), 0..10),
    ) {
        let ring = ModRing::new(&m);
        let vals: Vec<BigUint> = xs.iter().map(|x| x.value(&m)).collect();
        let got = ring.batch_inv(&vals);
        prop_assert_eq!(got.len(), vals.len());
        for (x, inv) in vals.iter().zip(&got) {
            prop_assert_eq!(inv, &x.modinv(&m));
        }
    }

    // Montgomery domain round-trip on the raw kernels: `to_mont` →
    // `from_mont` is the identity on reduced values, and reduces
    // unreduced ones, at both instantiations.
    #[test]
    fn mont_roundtrip_identity_1024(m in exact_width_modulus(16), x in operand()) {
        let fp = FpMont::<16>::new(&m).expect("exact-width odd modulus");
        let x = x.value(&m);
        prop_assert_eq!(fp.from_mont(&fp.to_mont(&x)), &x % &m);
    }

    #[test]
    fn mont_roundtrip_identity_2048(m in exact_width_modulus(32), x in operand()) {
        let fp = FpMont::<32>::new(&m).expect("exact-width odd modulus");
        let x = x.value(&m);
        prop_assert_eq!(fp.from_mont(&fp.to_mont(&x)), &x % &m);
    }
}
