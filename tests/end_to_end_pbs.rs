//! End-to-end PPMSpbs rounds (paper Algorithm 4).

use ppms_core::ppmspbs::PbsMarket;
use ppms_core::{MarketError, Op, Party};
use ppms_integration::{rng, TEST_RSA_BITS};

#[test]
fn full_round() {
    let mut r = rng(10);
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut r, 10, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);

    let outcome = market
        .run_round(
            &mut r,
            &jo,
            &sp,
            "fall detection study",
            b"accelerometer trace",
        )
        .expect("round completes");
    assert_eq!(outcome.credited, 1);
    assert_eq!(market.bank.balance(jo.account).unwrap(), 9);
    assert_eq!(market.bank.balance(sp.account).unwrap(), 1);
    assert_eq!(
        market.bank.total_supply(),
        10,
        "unitary transfer conserves supply"
    );
}

#[test]
fn serial_reuse_rejected() {
    let mut r = rng(11);
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut r, 10, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);

    market.run_round(&mut r, &jo, &sp, "job", b"data").unwrap();
    // The same SP state (same serial) cannot be paid twice.
    let err = market
        .run_round(&mut r, &jo, &sp, "job again", b"data")
        .unwrap_err();
    assert_eq!(err, MarketError::StaleSerial);
    assert_eq!(
        market.bank.balance(sp.account).unwrap(),
        1,
        "only one credit moved"
    );
}

#[test]
fn broke_jo_cannot_pay() {
    let mut r = rng(12);
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut r, 0, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);
    let err = market
        .run_round(&mut r, &jo, &sp, "job", b"data")
        .unwrap_err();
    assert_eq!(err, MarketError::InsufficientFunds);
    assert_eq!(market.bank.balance(sp.account).unwrap(), 0);
}

#[test]
fn forged_deposit_rejected() {
    let mut r = rng(13);
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut r, 10, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);

    // An SP trying to deposit a made-up signature gets rejected.
    let fake_sig = ppms_bigint::random_below(&mut r, &jo.account_key.public.n);
    let err = market
        .deposit(
            &jo.account_key.public,
            &sp.account_key.public,
            &sp.serial,
            &fake_sig,
        )
        .unwrap_err();
    assert_eq!(err, MarketError::BadCoin("deposit signature".into()));
}

#[test]
fn deposit_with_wrong_serial_rejected() {
    // A valid signature deposited under a different serial must fail —
    // the partially blind signature binds the common info.
    let mut r = rng(14);
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut r, 10, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);

    market.register_job(&jo, "job");
    market.labor_registration(&mut r, &jo, &sp).unwrap();
    // Run the PBS flow manually to capture the signature.
    let msg = sp.account_key.public.to_bytes();
    let (alpha, blinding) =
        ppms_crypto::rsa::pbs_blind(&mut r, &jo.account_key.public, &sp.serial, &msg);
    let beta = ppms_crypto::rsa::pbs_sign(&jo.account_key, &sp.serial, &alpha).unwrap();
    let sig = ppms_crypto::rsa::pbs_unblind(&jo.account_key.public, &beta, &blinding);

    let err = market
        .deposit(
            &jo.account_key.public,
            &sp.account_key.public,
            b"other-serial-....",
            &sig,
        )
        .unwrap_err();
    assert_eq!(err, MarketError::BadCoin("deposit signature".into()));
    // Under the right serial it succeeds.
    assert_eq!(
        market.deposit(
            &jo.account_key.public,
            &sp.account_key.public,
            &sp.serial,
            &sig
        ),
        Ok(1)
    );
}

#[test]
fn metrics_and_traffic_cover_algorithm4() {
    let mut r = rng(15);
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut r, 10, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);
    market.run_round(&mut r, &jo, &sp, "job", b"data").unwrap();

    // Table I shape: JO does Enc-heavy work, SP Dec-heavy, MA verifies.
    assert!(market.metrics.get(Party::Jo, Op::Enc) >= 2);
    assert!(market.metrics.get(Party::Sp, Op::Dec) >= 2);
    assert!(market.metrics.get(Party::Ma, Op::Dec) >= 1);
    assert_eq!(
        market.metrics.get(Party::Jo, Op::Zkp),
        0,
        "no ZKPs in PPMSpbs"
    );

    for label in [
        "job-registration",
        "labor-registration",
        "designation",
        "pbs-request",
        "pbs-response",
        "data-report",
        "payment-delivery",
        "deposit",
    ] {
        assert!(market.traffic.has_label(label), "missing step {label}");
    }
}

#[test]
fn many_rounds_many_parties() {
    let mut r = rng(16);
    let mut market = PbsMarket::new();
    let jos: Vec<_> = (0..3)
        .map(|_| market.register_jo(&mut r, 5, TEST_RSA_BITS))
        .collect();
    for round in 0..4 {
        for jo in &jos {
            let sp = market.register_sp(&mut r, TEST_RSA_BITS);
            market
                .run_round(&mut r, jo, &sp, &format!("job {round}"), b"d")
                .unwrap();
        }
    }
    for jo in &jos {
        assert_eq!(market.bank.balance(jo.account).unwrap(), 1, "5 - 4 rounds");
    }
    assert_eq!(market.bank.total_supply(), 15);
}
