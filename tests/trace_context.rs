//! Trace-context propagation end-to-end: a trace id minted at the
//! client rides the wire envelope, survives retransmission (same id on
//! every attempt of one logical request), reaches the serving shard's
//! flight recorder, and — when a shard worker dies — appears in the
//! crash-dump JSON, tying the dump to the request that was in flight.

use ppms_core::service::{MaRequest, MaResponse, MaService, ServiceConfig};
use ppms_core::{next_request_id, CrashPoint, FaultPlan, Party, RetryPolicy, SimNetConfig};
use ppms_ecash::DecParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn crash_dump_carries_the_crashing_requests_trace_id() {
    let mut rng = StdRng::seed_from_u64(0x7A3E);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            crash: Some(CrashPoint {
                shard: 0,
                at_request: 2,
            }),
            ..ServiceConfig::default()
        },
    );
    let client = svc.client();
    let MaResponse::JobId(job) = client.call(MaRequest::PublishJob {
        description: "j".into(),
        payment: 1,
        pseudonym: vec![1],
    }) else {
        panic!("publish");
    };

    // Request #2 hits the injected crash point under a caller-chosen
    // trace id; the retry reuses both the idempotency key *and* the
    // trace, so the whole logical operation is one trace.
    const TRACE: u64 = 0xFEED_F00D_0000_0042;
    let id = next_request_id();
    let req = MaRequest::LaborRegister {
        job_id: job,
        sp_pubkey: vec![9],
    };
    assert!(
        client.try_call_traced(id, TRACE, req.clone()).is_err(),
        "crash must surface as a transport error"
    );
    let retry = client
        .try_call_traced(id, TRACE, req)
        .expect("retry after respawn");
    assert!(matches!(retry, MaResponse::Ok), "{retry:?}");

    // The dump written by the dying worker names the crashing trace.
    let dumps = svc.crash_dumps();
    assert_eq!(dumps.len(), 1, "exactly one worker died");
    let body = std::fs::read_to_string(&dumps[0]).expect("dump file readable");
    assert!(body.contains("\"reason\": \"injected-crash\""), "{body}");
    assert!(
        body.contains(&format!("{TRACE:#018x}")),
        "dump must carry the crashing request's trace id: {body}"
    );

    // The shard's ring (shared across worker incarnations) shows the
    // same trace on the crashing attempt and the successful retry.
    let events = svc.recorders()[0].snapshot();
    let labels: Vec<&str> = events
        .iter()
        .filter(|e| e.trace_id == TRACE)
        .map(|e| e.label)
        .collect();
    assert!(labels.contains(&"crash"), "{labels:?}");
    assert!(
        labels.contains(&"commit"),
        "the retry must commit under the original trace: {labels:?}"
    );
    svc.shutdown();
}

#[test]
fn one_trace_survives_lossy_retransmission() {
    let mut rng = StdRng::seed_from_u64(0x7A3F);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        },
    );
    let plan = FaultPlan {
        net: SimNetConfig {
            latency_micros: 0,
            jitter_micros: 0,
            drop_rate: 0.30,
            seed: 0x51F7,
        },
        duplicate_rate: 0.10,
        reorder_rate: 0.0,
        corrupt_rate: 0.10,
    };
    let client = svc.retrying_client(Party::Sp, plan, RetryPolicy::aggressive(0x51F7));

    let mut traces = Vec::new();
    for i in 0..12u64 {
        let trace = 0x7000_0000_0000_0000 | i;
        let resp = client
            .try_call_traced(next_request_id(), trace, MaRequest::RegisterSpAccount)
            .expect("retry layer converges under loss");
        assert!(matches!(resp, MaResponse::Account(_)), "{resp:?}");
        traces.push(trace);
    }

    let faults = svc.faults.snapshot();
    assert!(faults.retries > 0, "loss must have forced retransmissions");

    // Every committed operation kept its caller-minted trace across
    // the wire, the faults, and whichever shard served it…
    let events: Vec<_> = svc.recorders().iter().flat_map(|r| r.snapshot()).collect();
    for trace in &traces {
        assert!(
            events
                .iter()
                .any(|e| e.trace_id == *trace && e.label == "commit"),
            "trace {trace:#x} never committed at a shard"
        );
    }
    // …and every dedup replay (an executed-but-unacked retransmit) was
    // served under one of those same traces, not a fresh one.
    for event in events.iter().filter(|e| e.label == "dedup-replay") {
        assert!(
            traces.contains(&event.trace_id),
            "replayed retransmit carried an unknown trace: {event:?}"
        );
    }
    svc.shutdown();
}
