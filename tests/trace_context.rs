//! Trace-context propagation end-to-end: a trace id minted at the
//! client rides the wire envelope, survives retransmission (same id on
//! every attempt of one logical request), reaches the serving shard's
//! flight recorder, and — when a shard worker dies — appears in the
//! crash-dump JSON, tying the dump to the request that was in flight.

use ppms_core::gate::AdmissionConfig;
use ppms_core::service::{MaClient, MaRequest, MaResponse, MaService, ServiceConfig};
use ppms_core::sim::mint_deposit_batches;
use ppms_core::{
    next_request_id, CrashPoint, DurabilityConfig, FaultPlan, Party, RetryPolicy,
    RetryingTransport, SimNetConfig, SimStorage, TcpClientConfig, TcpConfig, TcpFrontDoor,
    TcpTransport, Transport,
};
use ppms_ecash::DecParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn crash_dump_carries_the_crashing_requests_trace_id() {
    let mut rng = StdRng::seed_from_u64(0x7A3E);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            crash: Some(CrashPoint {
                shard: 0,
                at_request: 2,
            }),
            ..ServiceConfig::default()
        },
    );
    let client = svc.client();
    let MaResponse::JobId(job) = client.call(MaRequest::PublishJob {
        description: "j".into(),
        payment: 1,
        pseudonym: vec![1],
    }) else {
        panic!("publish");
    };

    // Request #2 hits the injected crash point under a caller-chosen
    // trace id; the retry reuses both the idempotency key *and* the
    // trace, so the whole logical operation is one trace.
    const TRACE: u64 = 0xFEED_F00D_0000_0042;
    let id = next_request_id();
    let req = MaRequest::LaborRegister {
        job_id: job,
        sp_pubkey: vec![9],
    };
    assert!(
        client.try_call_traced(id, TRACE, req.clone()).is_err(),
        "crash must surface as a transport error"
    );
    let retry = client
        .try_call_traced(id, TRACE, req)
        .expect("retry after respawn");
    assert!(matches!(retry, MaResponse::Ok), "{retry:?}");

    // The dump written by the dying worker names the crashing trace.
    let dumps = svc.crash_dumps();
    assert_eq!(dumps.len(), 1, "exactly one worker died");
    let body = std::fs::read_to_string(&dumps[0]).expect("dump file readable");
    assert!(body.contains("\"reason\": \"injected-crash\""), "{body}");
    assert!(
        body.contains(&format!("{TRACE:#018x}")),
        "dump must carry the crashing request's trace id: {body}"
    );

    // The shard's ring (shared across worker incarnations) shows the
    // same trace on the crashing attempt and the successful retry.
    let events = svc.recorders()[0].snapshot();
    let labels: Vec<&str> = events
        .iter()
        .filter(|e| e.trace_id == TRACE)
        .map(|e| e.label)
        .collect();
    assert!(labels.contains(&"crash"), "{labels:?}");
    assert!(
        labels.contains(&"commit"),
        "the retry must commit under the original trace: {labels:?}"
    );
    svc.shutdown();
}

#[test]
fn one_trace_survives_lossy_retransmission() {
    let mut rng = StdRng::seed_from_u64(0x7A3F);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        },
    );
    let plan = FaultPlan {
        net: SimNetConfig {
            latency_micros: 0,
            jitter_micros: 0,
            drop_rate: 0.30,
            seed: 0x51F7,
        },
        duplicate_rate: 0.10,
        reorder_rate: 0.0,
        corrupt_rate: 0.10,
    };
    let client = svc.retrying_client(Party::Sp, plan, RetryPolicy::aggressive(0x51F7));

    let mut traces = Vec::new();
    for i in 0..12u64 {
        let trace = 0x7000_0000_0000_0000 | i;
        let resp = client
            .try_call_traced(next_request_id(), trace, MaRequest::RegisterSpAccount)
            .expect("retry layer converges under loss");
        assert!(matches!(resp, MaResponse::Account(_)), "{resp:?}");
        traces.push(trace);
    }

    let faults = svc.faults.snapshot();
    assert!(faults.retries > 0, "loss must have forced retransmissions");

    // Every committed operation kept its caller-minted trace across
    // the wire, the faults, and whichever shard served it…
    let events: Vec<_> = svc.recorders().iter().flat_map(|r| r.snapshot()).collect();
    for trace in &traces {
        assert!(
            events
                .iter()
                .any(|e| e.trace_id == *trace && e.label == "commit"),
            "trace {trace:#x} never committed at a shard"
        );
    }
    // …and every dedup replay (an executed-but-unacked retransmit) was
    // served under one of those same traces, not a fresh one.
    for event in events.iter().filter(|e| e.label == "dedup-replay") {
        assert!(
            traces.contains(&event.trace_id),
            "replayed retransmit carried an unknown trace: {event:?}"
        );
    }
    svc.shutdown();
}

/// One decoded `(name, span_id, parent_id)` triple per exported
/// trace-event line. The exporter's format is fixed (hand-rolled JSON
/// in `ppms-obs`), so positional parsing is stable.
#[cfg(not(feature = "no-op"))]
fn parse_jsonl(jsonl: &str) -> Vec<(String, u64, u64)> {
    fn field_u64(line: &str, key: &str) -> u64 {
        let at = line.find(key).unwrap_or_else(|| panic!("{key} in {line}")) + key.len();
        line[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("numeric field")
    }
    jsonl
        .lines()
        .map(|line| {
            let at = line.find("\"name\":\"").expect("name field") + 8;
            let name = line[at..]
                .split('"')
                .next()
                .expect("name value")
                .to_string();
            (
                name,
                field_u64(line, "\"span_id\":"),
                field_u64(line, "\"parent_id\":"),
            )
        })
        .collect()
}

/// The PR's acceptance trace: one retried PPMSdec deposit, driven
/// through the retry layer and the TCP front door into a durable
/// (fsync-per-append) shard, exports as a single JSONL trace whose
/// causal tree runs client span → ≥2 retry attempts → reactor
/// read/reply → gate → shard handler → WAL append → fsync. The first
/// attempt dies because the reactor itself panics on the trace (the
/// chaos hook), which also proves the reactor's dump-and-resume path.
#[cfg(not(feature = "no-op"))]
#[test]
fn exported_jsonl_trace_shows_the_causal_tree_of_a_retried_deposit() {
    const TRACE: u64 = 0x7C0F_FEE0_0000_0001;
    let mut rng = StdRng::seed_from_u64(0x7A40);
    let svc = MaService::spawn_durable(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig::default(),
        DurabilityConfig::new(Arc::new(SimStorage::new())), // SyncPolicy::Always
    )
    .expect("durable spawn");
    let door = TcpFrontDoor::spawn(
        &svc,
        "127.0.0.1:0",
        TcpConfig {
            admission: AdmissionConfig {
                price: 0,
                requests_per_token: u64::MAX,
                ..AdmissionConfig::default()
            },
            chaos_panic_on_trace: Some(TRACE),
            ..TcpConfig::default()
        },
    )
    .expect("front door");

    let (account, spends) = mint_deposit_batches(&svc, 0xD3E9, 1)
        .expect("mint deposit batch")
        .remove(0);

    let mut ccfg = TcpClientConfig::new(door.addr());
    // The panicked-over frame never gets a reply; a short deadline
    // turns that silence into the transport error the retry layer eats.
    ccfg.reply_timeout = Duration::from_millis(200);
    let tcp: Arc<dyn Transport> = Arc::new(TcpTransport::new(ccfg));
    let retrying = RetryingTransport::new(tcp, RetryPolicy::aggressive(0x7A40), svc.faults.clone());
    let client = MaClient::new(Arc::new(retrying), Party::Sp);

    let root = ppms_obs::Span::root("client.deposit", TRACE);
    let resp = client
        .try_call_spanned(
            next_request_id(),
            root.ctx(),
            MaRequest::DepositBatch { account, spends },
        )
        .expect("retry converges after the reactor panic");
    assert!(
        matches!(resp, MaResponse::BatchDeposited { rejected: 0, .. }),
        "{resp:?}"
    );
    drop(root);

    // The reactor died once, dumped (spans included), and resumed.
    let dumps = door.crash_dumps();
    assert_eq!(dumps.len(), 1, "exactly one reactor panic: {dumps:?}");
    let body = std::fs::read_to_string(&dumps[0]).expect("dump readable");
    assert!(body.contains("\"reason\": \"tcp-reactor-panic\""), "{body}");
    assert!(body.contains("\"spans\""), "dump must embed the span ring");
    assert!(
        body.contains(&format!("{TRACE:#018x}")),
        "dump names the chaos trace"
    );

    // One exported trace carries the whole causal tree.
    let jsonl = ppms_obs::export_trace_jsonl(TRACE);
    let spans = parse_jsonl(&jsonl);
    let by_id: std::collections::HashMap<u64, (&str, u64)> = spans
        .iter()
        .map(|(n, id, parent)| (*id, (n.as_str(), *parent)))
        .collect();
    let ids_of = |name: &str| -> Vec<(u64, u64)> {
        spans
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, id, parent)| (*id, *parent))
            .collect()
    };

    let roots = ids_of("client.deposit");
    assert_eq!(roots.len(), 1, "{jsonl}");
    let (root_id, root_parent) = roots[0];
    assert_eq!(root_parent, 0, "the client span is the trace root");

    let attempts = ids_of("retry.attempt");
    assert!(
        attempts.len() >= 2,
        "a retried deposit needs >=2 attempt spans: {jsonl}"
    );
    assert!(
        attempts.iter().all(|(_, parent)| *parent == root_id),
        "every attempt is a child of the client span"
    );

    // The gate checked the (admitted) connection on the app frame, and
    // the reply rode back under the caller's context.
    assert!(!ids_of("gate.check").is_empty(), "{jsonl}");
    let replies = ids_of("tcp.reply");
    assert!(
        replies
            .iter()
            .any(|(_, parent)| attempts.iter().any(|(id, _)| id == parent)),
        "the reply span parents to the surviving attempt: {jsonl}"
    );

    // Deepest rung first: walk parent links from the fsync up to the
    // root and require the exact acceptance chain.
    let (fsync_id, _) = *ids_of("storage.fsync")
        .first()
        .expect("fsync span exported");
    let mut chain = Vec::new();
    let mut cursor = fsync_id;
    while cursor != 0 {
        let (name, parent) = by_id[&cursor];
        chain.push(name);
        cursor = parent;
    }
    assert_eq!(
        chain,
        vec![
            "storage.fsync",
            "wal.append",
            "shard.handle",
            "tcp.read",
            "retry.attempt",
            "client.deposit",
        ],
        "causal chain from the durable write back to the client: {jsonl}"
    );

    drop(door);
    svc.shutdown();
}
