//! Cross-crate crypto-stack integration: the tower built from a
//! *searched* chain (not a fixture), proofs spanning tower levels,
//! CL-authenticated withdrawal against the pairing, and parallel
//! bundle verification.

use ppms_crypto::tower::GroupTower;
use ppms_crypto::zkp::ddlog::{DdlogProof, DdlogStatement};
use ppms_ecash::{build_payment, plan_break, CashBreak, DecBank, DecParams};
use ppms_integration::rng;
use ppms_primes::{find_chain, verify_chain};

#[test]
fn searched_chain_powers_a_working_tower() {
    // End-to-end: search a fresh chain online, build the tower, prove
    // and verify a double-dlog across its levels.
    let mut r = rng(40);
    let chain = find_chain(&mut r, 24, 3);
    assert!(verify_chain(&chain));
    let tower = GroupTower::from_chain(&chain);
    assert_eq!(tower.depth(), 2);

    let inner = &tower.level(0).group;
    let outer = &tower.level(1).group;
    let x = inner.random_exponent(&mut r);
    let y = outer.exp(&outer.g, &inner.g_exp(&x));
    let stmt = DdlogStatement {
        outer,
        inner,
        g: &outer.g,
        h: &inner.g,
        y: &y,
    };
    let proof = DdlogProof::prove(&mut r, &stmt, &x, 16, "integration", b"");
    assert!(proof.verify(&stmt, 16, "integration", b""));
}

#[test]
fn online_setup_to_working_coin() {
    // DecParams::setup_online → withdraw → spend → deposit, all from a
    // freshly searched chain.
    let mut r = rng(41);
    let params = DecParams::setup_online(1, 20, 8, 99);
    let mut bank = DecBank::new(&mut r, params.clone(), 512);
    let coin = bank.withdraw_coin(&mut r);
    let spend = coin.spend(
        &mut r,
        &params,
        &ppms_ecash::NodePath::from_index(1, 0),
        b"",
    );
    assert_eq!(bank.deposit(&spend, b""), Ok(1));
}

#[test]
fn parallel_bundle_verification_matches_sequential() {
    let mut r = rng(42);
    let params = DecParams::fixture(3, 10);
    let bank = DecBank::new(&mut r, params.clone(), 512);
    let coin = bank.withdraw_coin(&mut r);
    let plan = plan_break(CashBreak::Unitary, 6, params.levels).unwrap();
    let items = build_payment(
        &mut r,
        &params,
        &coin,
        &plan,
        b"",
        bank.public_key().size_bytes(),
    )
    .unwrap();

    let (seq, seq_total) =
        ppms_core::sim::verify_bundle_sequential(&params, bank.public_key(), &items, b"");
    let (par, par_total) =
        ppms_core::sim::verify_bundle_parallel(&params, bank.public_key(), &items, b"");
    assert_eq!(seq_total, 6);
    assert_eq!(par_total, 6);
    assert_eq!(seq.len(), par.len());
    let seq_serials: Vec<_> = seq.iter().map(|s| s.serial().clone()).collect();
    let par_serials: Vec<_> = par.iter().map(|s| s.serial().clone()).collect();
    assert_eq!(
        seq_serials, par_serials,
        "rayon preserves order via collect"
    );
}

#[test]
fn threaded_pbs_market_conserves_supply() {
    let report = ppms_core::sim::run_parallel_pbs_market(7, 4, 3, 512, 4).expect("parallel market");
    assert_eq!(report.completed, 12);
    assert_eq!(report.failed, 0);
    assert_eq!(
        report.supply_before, report.supply_after,
        "ledger conserved under contention"
    );
}

#[test]
fn fig5_style_timing_runs() {
    // Smoke-test the Fig. 5 harness at tiny scale: both mechanisms
    // complete and PPMSpbs is cheaper per round.
    let (dec_timing, outcomes) =
        ppms_core::sim::run_dec_rounds(50, 2, 2, 8, 512, 48, 3, CashBreak::Pcba).unwrap();
    let pbs_timing = ppms_core::sim::run_pbs_rounds(51, 2, 512).unwrap();
    assert_eq!(dec_timing.rounds, 2);
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|o| o.credited == 3));
    assert_eq!(pbs_timing.rounds, 2);
}
