//! The TCP front door's security and overload policies, exercised
//! over real loopback sockets: unadmitted connections never reach a
//! shard handler, admission is paid in the market's own e-cash (and a
//! double-spent admission coin is refused), slow clients are evicted
//! when their outbound buffer fills instead of growing it without
//! bound, and overload is shed with `Busy` instead of queuing
//! unboundedly. Every policy decision is asserted through the obs
//! counters the reactor records (`tcp.*`, `gate.*`).

use ppms_core::gate::{AdmissionConfig, OpsRequest};
use ppms_core::service::{MaClient, MaRequest, MaResponse, MaService, ServiceConfig};
use ppms_core::sim::{mint_admission_spends, mint_deposit_batches};
use ppms_core::{
    next_request_id, next_trace_id, Envelope, FramedConn, GateRequest, GateResponse, MarketError,
    Party, TcpByteStream, TcpClientConfig, TcpConfig, TcpFrontDoor, TcpTransport,
};
use ppms_ecash::DecParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spawn_service(seed: u64, shards: usize, queue_depth: usize) -> MaService {
    let mut rng = StdRng::seed_from_u64(seed);
    MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards,
            queue_depth,
            ..ServiceConfig::default()
        },
    )
}

/// A raw framed connection to the front door — the protocol surface
/// an arbitrary (possibly hostile) peer sees, below `TcpTransport`'s
/// well-behaved client logic.
fn gate_conn(addr: SocketAddr) -> FramedConn {
    let stream = TcpStream::connect(addr).expect("loopback connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(5)))
        .expect("read timeout");
    let _ = stream.set_nodelay(true);
    FramedConn::new(Box::new(TcpByteStream(stream)))
}

fn gate_frame(party: Party, msg_id: u64, payload: &GateRequest) -> Vec<u8> {
    Envelope {
        msg_id,
        correlation_id: 0,
        trace_id: next_trace_id(),
        span_id: 0,
        parent_id: 0,
        party,
        payload,
    }
    .to_bytes()
}

/// One correlated request/response exchange on a raw connection.
fn ask(conn: &mut FramedConn, party: Party, payload: &GateRequest) -> GateResponse {
    let msg_id = next_request_id();
    conn.send_frame(&gate_frame(party, msg_id, payload))
        .expect("send");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = conn.recv_frame(deadline).expect("reply");
        let env = Envelope::<GateResponse>::from_bytes(&reply).expect("gate reply decodes");
        if env.correlation_id == msg_id {
            return env.payload;
        }
    }
}

fn open_door(price_zero: bool) -> AdmissionConfig {
    AdmissionConfig {
        price: if price_zero { 0 } else { 1 },
        requests_per_token: 100_000,
        ..AdmissionConfig::default()
    }
}

#[test]
fn unadmitted_requests_never_reach_a_shard() {
    let svc = spawn_service(0xD001, 2, 64);
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", TcpConfig::default()).expect("front door");

    // Baseline after spawn (the revenue-account registration is the
    // service's own and has already landed).
    let before = svc.obs.snapshot();

    let mut conn = gate_conn(door.addr());
    // Hello without payment: challenged, not admitted.
    assert!(matches!(
        ask(&mut conn, Party::Sp, &GateRequest::Hello),
        GateResponse::Challenge { .. }
    ));
    // A forged token bounces with a re-challenge.
    assert!(matches!(
        ask(
            &mut conn,
            Party::Sp,
            &GateRequest::App {
                token: 0xDEAD_BEEF,
                request: MaRequest::RegisterSpAccount,
            },
        ),
        GateResponse::Challenge { .. }
    ));
    // Shutdown is refused outright — network peers cannot stop the
    // market even if they had a token.
    assert!(matches!(
        ask(
            &mut conn,
            Party::Sp,
            &GateRequest::App {
                token: 0xDEAD_BEEF,
                request: MaRequest::Shutdown,
            },
        ),
        GateResponse::Denied { .. }
    ));

    // Not one of those frames reached the dispatcher: the dedup
    // counters (incremented once per request entering the service)
    // are untouched.
    let after = svc.obs.snapshot();
    assert_eq!(
        before.counter("ma.dedup.misses"),
        after.counter("ma.dedup.misses"),
        "an unadmitted request entered the service"
    );
    assert_eq!(
        before.counter("ma.dedup.hits"),
        after.counter("ma.dedup.hits")
    );
    assert!(after.counter("gate.challenges") >= 2);

    drop(door);
    svc.shutdown();
}

#[test]
fn admission_is_paid_and_double_spent_coins_are_refused() {
    let svc = spawn_service(0xD002, 2, 64);
    // One request per token forces a second admission immediately.
    let config = TcpConfig {
        admission: AdmissionConfig {
            requests_per_token: 1,
            ..AdmissionConfig::default()
        },
        ..TcpConfig::default()
    };
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", config).expect("front door");

    let spends = mint_admission_spends(&svc, 0xFEE, 1).expect("wallet");
    let transport = TcpTransport::new(TcpClientConfig::new(door.addr()));
    // The wallet holds the same spend twice: the first admission
    // deposits it legitimately, the second replays a spent serial.
    transport.load_wallet(vec![spends[0].clone(), spends[0].clone()]);
    let client = MaClient::new(Arc::new(transport), Party::Sp);

    let account = match client.try_call(MaRequest::RegisterSpAccount) {
        Ok(MaResponse::Account(a)) => a,
        other => panic!("paid admission should serve the request, got {other:?}"),
    };

    // Token exhausted; re-admission presents the double-spent coin
    // and must be refused with a *fatal* error (not a retryable one).
    match client.try_call(MaRequest::Balance { account }) {
        Err(MarketError::BadCoin(reason)) => {
            assert!(
                reason.contains("admission denied"),
                "unexpected refusal: {reason}"
            );
        }
        other => panic!("double-spent admission must be denied, got {other:?}"),
    }

    let snap = door.obs_snapshot();
    assert!(snap.counter("gate.admitted") >= 1, "first admission minted");
    assert!(snap.counter("gate.denied") >= 1, "replayed coin refused");

    drop(door);
    svc.shutdown();
}

#[test]
fn exhausted_token_is_refused_and_the_client_repays() {
    // The full admission-token lifecycle: one paid token buys exactly
    // N requests; the N+1st is refused at the gate (re-challenged,
    // never reaching a shard with the dead token) and the client
    // transport automatically re-pays from its wallet — visible as a
    // second admission, a second fee spent, and uninterrupted service
    // at the request level.
    let svc = spawn_service(0xD00D, 2, 64);
    let per_token = 3u64;
    let config = TcpConfig {
        admission: AdmissionConfig {
            price: 1,
            requests_per_token: per_token,
            ..AdmissionConfig::default()
        },
        ..TcpConfig::default()
    };
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", config).expect("front door");

    let transport = Arc::new(TcpTransport::new(TcpClientConfig::new(door.addr())));
    transport.load_wallet(mint_admission_spends(&svc, 0xFED5, 4).expect("wallet"));
    let client = MaClient::new(
        transport.clone() as Arc<dyn ppms_core::Transport>,
        Party::Sp,
    );

    // N requests ride the first token; the N+1st exhausts it and
    // forces the re-admission. All succeed from the caller's seat.
    let account = match client.try_call(MaRequest::RegisterSpAccount) {
        Ok(MaResponse::Account(a)) => a,
        other => panic!("first paid request, got {other:?}"),
    };
    for i in 1..=per_token {
        match client.try_call(MaRequest::Balance { account }) {
            Ok(MaResponse::Balance(0)) => {}
            other => panic!("request {i} after admission, got {other:?}"),
        }
    }

    assert_eq!(
        transport.wallet_len(),
        2,
        "two admissions at price 1 cost exactly two wallet spends"
    );
    let snap = door.obs_snapshot();
    assert_eq!(
        snap.counter("gate.admitted"),
        2,
        "token exhaustion must have minted a second session"
    );
    assert!(
        snap.counter("gate.challenges") >= 2,
        "the N+1st request must have been re-challenged"
    );
    assert_eq!(snap.counter("gate.denied"), 0, "no coin was refused");

    drop(door);
    svc.shutdown();
}

#[test]
fn slow_clients_are_evicted_with_bounded_buffers() {
    let svc = spawn_service(0xD003, 2, 64);
    let config = TcpConfig {
        // Small outbound budget so a non-reading client trips it fast.
        write_queue_bytes: 32 * 1024,
        admission: open_door(true),
        ..TcpConfig::default()
    };
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", config).expect("front door");

    // Publish a job and register two fat labor keys so `FetchLabor`
    // replies are ~24 KiB each.
    let setup = svc.client();
    let job_id = match setup.call(MaRequest::PublishJob {
        description: "eviction fixture".into(),
        payment: 1,
        pseudonym: vec![1, 2, 3],
    }) {
        MaResponse::JobId(id) => id,
        other => panic!("publish: {other:?}"),
    };
    for fill in [0xA5u8, 0x5A] {
        match setup.call(MaRequest::LaborRegister {
            job_id,
            sp_pubkey: vec![fill; 12 * 1024],
        }) {
            MaResponse::Ok => {}
            other => panic!("labor fixture: {other:?}"),
        }
    }

    // The slow client: admitted through the open door, then pipelines
    // FetchLabor requests and never reads a single reply.
    let mut slow = gate_conn(door.addr());
    let token = match ask(&mut slow, Party::Jo, &GateRequest::Hello) {
        GateResponse::Admitted { token, .. } => token,
        other => panic!("open door must admit, got {other:?}"),
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut sent = 0u32;
    loop {
        if door.obs_snapshot().counter("tcp.evicted") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no eviction after {sent} unread replies"
        );
        let frame = gate_frame(
            Party::Jo,
            next_request_id(),
            &GateRequest::App {
                token,
                request: MaRequest::FetchLabor { job_id },
            },
        );
        // Once the reactor evicts us it closes the socket, so a send
        // failure is also the success signal.
        if slow.send_frame(&frame).is_err() {
            break;
        }
        sent += 1;
        if sent.is_multiple_of(8) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let waited = Instant::now() + Duration::from_secs(10);
    while door.obs_snapshot().counter("tcp.evicted") == 0 && Instant::now() < waited {
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = door.obs_snapshot();
    assert!(snap.counter("tcp.evicted") >= 1, "slow client not evicted");

    // The eviction freed the connection slot: a fresh, well-behaved
    // client on the same door is served normally.
    let mut fresh = gate_conn(door.addr());
    let token = match ask(&mut fresh, Party::Jo, &GateRequest::Hello) {
        GateResponse::Admitted { token, .. } => token,
        other => panic!("fresh client refused: {other:?}"),
    };
    match ask(
        &mut fresh,
        Party::Jo,
        &GateRequest::App {
            token,
            request: MaRequest::FetchLabor { job_id },
        },
    ) {
        GateResponse::App(MaResponse::Labor(keys)) => assert_eq!(keys.len(), 2),
        other => panic!("fresh client not served: {other:?}"),
    }

    drop(door);
    svc.shutdown();
}

#[test]
fn overload_is_shed_with_busy_not_queued_unboundedly() {
    // A deliberately tiny service: one shard, queue depth one — the
    // whole pipeline absorbs only a few in-flight requests.
    let svc = spawn_service(0xD004, 1, 1);
    let config = TcpConfig {
        admission: open_door(true),
        max_inflight_per_conn: 64,
        ..TcpConfig::default()
    };
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", config).expect("front door");

    let mut conn = gate_conn(door.addr());
    let token = match ask(&mut conn, Party::Sp, &GateRequest::Hello) {
        GateResponse::Admitted { token, .. } => token,
        other => panic!("open door must admit, got {other:?}"),
    };

    // Fire volleys of expensive requests — full-coin deposit batches
    // whose per-spend ZK verification stalls the single shard for
    // milliseconds each — back-to-back without waiting for replies.
    // The inbox overflow must come back as Busy — immediately, not
    // after a queueing delay. On a loaded machine the shard can drain
    // between reactor reads, so escalate with fresh volleys until the
    // pipeline falls behind at least once.
    let mut busy = 0usize;
    let mut deposited = 0usize;
    let mut sent = 0usize;
    let mut round = 0u64;
    while busy == 0 {
        assert!(round < 8, "overload never shed ({deposited} deposited)");
        let batches = mint_deposit_batches(&svc, 0xB0B ^ round, 10).expect("batches");
        round += 1;
        let mut ids = Vec::new();
        for (account, spends) in &batches {
            let msg_id = next_request_id();
            conn.send_frame(&gate_frame(
                Party::Sp,
                msg_id,
                &GateRequest::App {
                    token,
                    request: MaRequest::DepositBatch {
                        account: *account,
                        spends: spends.clone(),
                    },
                },
            ))
            .expect("pipelined send");
            ids.push(msg_id);
        }
        sent += ids.len();

        // Every request gets exactly one reply: either its deposit
        // result or a Busy shed marker.
        let deadline = Instant::now() + Duration::from_secs(60);
        while !ids.is_empty() {
            let reply = conn.recv_frame(deadline).expect("pipelined reply");
            let env = Envelope::<GateResponse>::from_bytes(&reply).expect("reply decodes");
            let Some(pos) = ids.iter().position(|&id| id == env.correlation_id) else {
                continue;
            };
            ids.swap_remove(pos);
            match env.payload {
                GateResponse::App(MaResponse::Busy) | GateResponse::Busy => busy += 1,
                GateResponse::App(MaResponse::BatchDeposited { .. }) => deposited += 1,
                other => panic!("unexpected pipelined reply: {other:?}"),
            }
        }
    }
    assert!(deposited >= 1, "shedding must not starve the service");
    assert_eq!(busy + deposited, sent);

    let snap = door.obs_snapshot();
    assert_eq!(snap.counter("tcp.shed"), busy as u64);
    assert_eq!(snap.counter("tcp.evicted"), 0, "shedding is not eviction");

    drop(door);
    svc.shutdown();
}

#[test]
fn ops_plane_is_admission_exempt_read_only_and_shardless() {
    let svc = spawn_service(0xD005, 2, 64);
    // Paid door (default price 1): a wallet-less peer cannot reach a
    // shard, yet the ops family must serve it anyway.
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", TcpConfig::default()).expect("front door");
    let before = svc.obs.snapshot();

    // Raw connection, never admitted: the ops family answers where an
    // app request would only be challenged.
    let mut conn = gate_conn(door.addr());
    let health = match ask(&mut conn, Party::Sp, &GateRequest::Ops(OpsRequest::Health)) {
        GateResponse::Ops { body } => body,
        other => panic!("ops must be admission-exempt, got {other:?}"),
    };
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"uptime_ms\""), "{health}");
    assert!(health.contains("\"connections\""), "{health}");

    // The programmatic scrape surface — no wallet loaded.
    let t = TcpTransport::new(TcpClientConfig::new(door.addr()));
    let json = t.ops(OpsRequest::MetricsJson).expect("metrics json");
    assert!(
        json.contains("\"tcp.ops\""),
        "merged snapshot carries the door's own counters: {json}"
    );
    let prom = t.ops(OpsRequest::MetricsText).expect("prometheus text");
    assert!(
        prom.contains("# TYPE tcp_ops counter"),
        "prometheus rendering of the same snapshot: {prom}"
    );
    let slow = t.ops(OpsRequest::SlowLog).expect("slow log");
    assert!(
        slow.starts_with('[') && slow.ends_with(']'),
        "slow log is a JSON array: {slow}"
    );

    // Served entirely in-reactor: not one ops query entered the
    // service's dispatcher, let alone a shard.
    let after = svc.obs.snapshot();
    assert_eq!(
        before.counter("ma.dedup.misses"),
        after.counter("ma.dedup.misses"),
        "an ops query reached the service"
    );
    assert_eq!(
        before.counter("ma.dedup.hits"),
        after.counter("ma.dedup.hits")
    );
    assert!(after.counter("tcp.ops") >= 4, "every ops query counted");

    drop(door);
    svc.shutdown();
}

#[test]
fn ops_queries_are_rate_limited_but_app_traffic_is_not() {
    let svc = spawn_service(0xD006, 1, 64);
    let config = TcpConfig {
        admission: open_door(true),
        // Bucket of 3, refilled at 1/s: a burst of 10 must shed.
        ops_rate_per_sec: 1,
        ops_burst: 3,
        ..TcpConfig::default()
    };
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", config).expect("front door");

    let mut conn = gate_conn(door.addr());
    let (mut served, mut limited) = (0u64, 0u64);
    for _ in 0..10 {
        match ask(&mut conn, Party::Sp, &GateRequest::Ops(OpsRequest::Health)) {
            GateResponse::Ops { .. } => served += 1,
            GateResponse::Busy => limited += 1,
            other => panic!("unexpected ops answer: {other:?}"),
        }
    }
    assert!(
        (3..=4).contains(&served),
        "burst capacity bounds the served count, got {served}"
    );
    assert!(limited >= 6, "the rest must shed, got {limited}");

    // The ops bucket never touches app traffic: the same door still
    // serves an admitted client normally.
    let token = match ask(&mut conn, Party::Sp, &GateRequest::Hello) {
        GateResponse::Admitted { token, .. } => token,
        other => panic!("open door must admit, got {other:?}"),
    };
    match ask(
        &mut conn,
        Party::Sp,
        &GateRequest::App {
            token,
            request: MaRequest::RegisterSpAccount,
        },
    ) {
        GateResponse::App(MaResponse::Account(_)) => {}
        other => panic!("app traffic throttled by the ops bucket: {other:?}"),
    }

    let snap = door.obs_snapshot();
    assert_eq!(snap.counter("tcp.ops_limited"), limited);
    assert_eq!(snap.counter("tcp.ops"), served);

    drop(door);
    svc.shutdown();
}

#[test]
fn slow_requests_land_in_the_slow_log_with_their_span_tree() {
    let svc = spawn_service(0xD007, 1, 64);
    let config = TcpConfig {
        admission: open_door(true),
        // Every traced request is "slow" at a 1ns threshold.
        slow_request_threshold: Duration::from_nanos(1),
        slow_log_capacity: 4,
        ..TcpConfig::default()
    };
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", config).expect("front door");

    let client = MaClient::new(
        Arc::new(TcpTransport::new(TcpClientConfig::new(door.addr()))),
        Party::Sp,
    );
    let account = match client.call(MaRequest::RegisterSpAccount) {
        MaResponse::Account(a) => a,
        other => panic!("account: {other:?}"),
    };
    // Overflow the capacity-4 log so the FIFO bound is exercised too.
    for _ in 0..6 {
        match client.call(MaRequest::Balance { account }) {
            MaResponse::Balance(_) => {}
            other => panic!("balance: {other:?}"),
        }
    }

    let ops = TcpTransport::new(TcpClientConfig::new(door.addr()));
    let body = ops.ops(OpsRequest::SlowLog).expect("slow log");
    assert!(body.contains("\"trace_id\""), "{body}");
    assert!(body.contains("\"elapsed_ns\""), "{body}");
    assert!(body.contains("\"spans\""), "{body}");
    // In the live build the logged tree includes the server-side spans
    // of the slow request (the no-op build logs an empty tree).
    #[cfg(not(feature = "no-op"))]
    assert!(
        body.contains("shard.handle"),
        "slow-log entries must carry the request's span tree: {body}"
    );
    // One "elapsed_ns" per entry (the nested span cells repeat
    // "trace_id", so that key cannot count entries).
    let entries = body.matches("\"elapsed_ns\"").count();
    assert!(
        (1..=4).contains(&entries),
        "FIFO capacity must bound the log, got {entries}: {body}"
    );

    let snap = door.obs_snapshot();
    assert!(snap.counter("tcp.slow_requests") >= 7);
    assert!(
        snap.histogram("tcp.request_ns").is_some() || cfg!(feature = "no-op"),
        "request latencies recorded"
    );

    drop(door);
    svc.shutdown();
}
