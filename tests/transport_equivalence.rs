//! Transport equivalence: the same market rounds must produce
//! identical ledger outcomes whether the messages travel as in-memory
//! enums ([`InProcTransport`]), as serialized wire envelopes over a
//! simulated network ([`SimNetTransport`]), or as real frames over
//! loopback TCP through the admission gate — and regardless of how
//! many shard workers the MA runs. The wire is an implementation
//! detail; the ledger is the ground truth.

use ppms_core::sim::{
    run_service_market, run_service_market_chaos, ServiceMarketOutcome, TcpEquivConfig,
    TransportKind,
};
use ppms_core::{FaultPlan, FlakyConfig, SimNetConfig};
use proptest::prelude::*;

const SEED: u64 = 0xE0;
const N_SPS: usize = 3;
const W: u64 = 3;

fn run(kind: TransportKind, shards: usize) -> ServiceMarketOutcome {
    run_service_market(SEED, shards, N_SPS, W, kind).expect("market run")
}

#[test]
fn inproc_and_simnet_produce_identical_ledgers() {
    let inproc = run(TransportKind::InProc, 1);
    let simnet = run(TransportKind::SimNet(SimNetConfig::default()), 1);
    assert_eq!(inproc, simnet);

    // Sanity on the shared expectations, not just mutual equality.
    assert_eq!(inproc.sp_credited, vec![W; N_SPS]);
    assert_eq!(inproc.sp_balances, vec![W; N_SPS]);
    assert_eq!(inproc.data_reports.len(), N_SPS);
    assert_eq!(inproc.jobs.len(), 1);
    assert_eq!(inproc.undelivered_payments, 0, "every payment delivered");
}

#[test]
fn shard_count_does_not_change_outcomes() {
    let one = run(TransportKind::InProc, 1);
    for shards in [2usize, 4] {
        let sharded = run(TransportKind::InProc, shards);
        assert_eq!(one, sharded, "{shards} shards");
    }
}

#[test]
fn simnet_with_latency_matches_inproc() {
    // Nonzero delay and jitter reorder nothing in this sequential
    // driver, so the ledger must still match exactly.
    let cfg = SimNetConfig {
        latency_micros: 50,
        jitter_micros: 100,
        drop_rate: 0.0,
        seed: 7,
    };
    let inproc = run(TransportKind::InProc, 2);
    let simnet = run(TransportKind::SimNet(cfg), 2);
    assert_eq!(inproc, simnet);
}

// Loopback TCP through the paywall is still the same market: the
// admission traffic (extra accounts, gate fees) must be invisible to
// the ledger audit, and the shard count must stay irrelevant.
#[test]
fn tcp_matches_inproc_and_simnet_across_shard_counts() {
    for shards in [1usize, 4] {
        let inproc = run(TransportKind::InProc, shards);
        let simnet = run(TransportKind::SimNet(SimNetConfig::default()), shards);
        let tcp = run(TransportKind::Tcp(TcpEquivConfig::default()), shards);
        assert_eq!(inproc, tcp, "tcp vs inproc at {shards} shards");
        assert_eq!(simnet, tcp, "tcp vs simnet at {shards} shards");
    }
}

// Seeded stream tears under the client's framing layer force redials,
// re-admissions and App retransmits; behind the aggressive retry
// layer the run must still converge to the fault-free ledger.
#[test]
fn tcp_over_flaky_loopback_behind_retry_converges() {
    let expected = run(TransportKind::InProc, 2);
    let flaky = run(
        TransportKind::Tcp(TcpEquivConfig {
            flaky: Some(FlakyConfig {
                read_fail: 0.02,
                write_fail: 0.02,
                seed: 0xF1AC,
            }),
            retry: true,
            ..TcpEquivConfig::default()
        }),
        2,
    );
    assert_eq!(expected, flaky);
}

// Mixed-version interop at the market level: a fleet of clients
// pinned to the previous wire versions (v3 carries the trace id but
// no span ids; legacy v2 not even the trace id) drives the same
// market through the v4 front door. Degraded observability must be
// the *only* difference — the audited ledger stays identical.
#[test]
fn older_wire_version_clients_produce_identical_ledgers() {
    use ppms_core::wire::{WIRE_VERSION_V2, WIRE_VERSION_V3};

    let expected = run(TransportKind::InProc, 2);
    for version in [WIRE_VERSION_V3, WIRE_VERSION_V2] {
        let outcome = run(
            TransportKind::Tcp(TcpEquivConfig {
                wire_version: Some(version),
                ..TcpEquivConfig::default()
            }),
            2,
        );
        assert_eq!(expected, outcome, "v{version} clients vs v4 server");
    }
}

#[test]
fn simnet_counts_real_envelope_bytes() {
    // A lossy-free SimNet run records every request and response at
    // its encoded size; spot-check the log through a tiny direct run.
    use ppms_core::service::{MaRequest, MaResponse, MaService};
    use ppms_core::{wire, Party};
    use ppms_ecash::DecParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(3);
    let svc = MaService::spawn(&mut rng, DecParams::fixture(2, 6), 512, 40);
    let client = svc.simnet_client(Party::Sp, SimNetConfig::default());
    let MaResponse::Account(account) = client.call(MaRequest::RegisterSpAccount) else {
        panic!("account");
    };

    let entries = svc.traffic.snapshot();
    assert_eq!(entries.len(), 2, "request + response");
    let expected_req = wire::framed_len(Party::Sp, &MaRequest::RegisterSpAccount);
    let expected_resp = wire::framed_len(Party::Ma, &MaResponse::Account(account));
    assert_eq!(entries[0].bytes, expected_req);
    assert_eq!(entries[0].label, "register-sp");
    assert_eq!(entries[1].bytes, expected_resp);
    assert_eq!(entries[1].label, "account");
    svc.shutdown();
}

#[test]
fn simnet_drop_surfaces_as_transport_error() {
    use ppms_core::service::{MaRequest, MaService};
    use ppms_core::{MarketError, Party};
    use ppms_ecash::DecParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(4);
    let svc = MaService::spawn(&mut rng, DecParams::fixture(2, 6), 512, 40);
    let client = svc.simnet_client(
        Party::Sp,
        SimNetConfig {
            drop_rate: 1.0,
            seed: 1,
            ..SimNetConfig::default()
        },
    );
    match client.try_call(MaRequest::RegisterSpAccount) {
        Err(MarketError::Transport(_)) => {}
        other => panic!("expected a dropped message, got {other:?}"),
    }
    svc.shutdown();
}

// ---------------------------------------------------------------------------
// Batched pipeline ≡ sequential pipeline (DESIGN.md §16)
// ---------------------------------------------------------------------------
//
// Cross-client batching is a scheduling optimisation, not a semantic
// one: for any interleaving of concurrent depositors — including a
// cheater whose tampered spend poisons the combined verification (the
// bisection fallback must isolate it) and a client that retransmits
// the same keyed request so both copies can land in one drain — the
// final ledger must equal what a strictly sequential, batching-free
// service produces for the same logical operations.

mod batching_equivalence {
    use ppms_core::next_request_id;
    use ppms_core::service::{BatchConfig, MaRequest, MaResponse, MaService, ServiceConfig};
    use ppms_crypto::cl::ClKeyPair;
    use ppms_ecash::{Coin, DecParams, NodePath, Spend};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    /// One depositor's pre-built workload.
    struct ClientPlan {
        account: ppms_core::AccountId,
        /// Unique valid spends, one deposit request each.
        spends: Vec<Spend>,
        /// A structurally invalid spend (tampered bank signature):
        /// `Some` only for the cheater. Fails the combined batch
        /// verification, forcing the bisection fallback.
        tampered: Option<Spend>,
        /// A fresh transcript over an already-deposited leaf: `Some`
        /// only for the cheater. Valid proof, reused serial — caught
        /// at execution, not verification.
        reused_leaf: Option<Spend>,
    }

    /// Registers accounts, withdraws one coin per client and pre-signs
    /// every spend, so the deposit phase is pure service traffic.
    fn build_plans(
        svc: &MaService,
        seed: u64,
        leaves: &[usize],
        cheater: usize,
    ) -> Vec<ClientPlan> {
        let client = svc.client();
        let mut rng = StdRng::seed_from_u64(seed);
        leaves
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let MaResponse::Account(account) = client.call(MaRequest::RegisterSpAccount) else {
                    panic!("sp account");
                };
                let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
                let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
                    funds: 50,
                    clpk: cl.public.clone(),
                }) else {
                    panic!("jo account");
                };
                let mut coin = Coin::mint(&mut rng, &svc.params);
                let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
                let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
                let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
                    account: jo,
                    nonce: 1,
                    auth,
                    blinded,
                }) else {
                    panic!("withdraw");
                };
                assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));
                let spends: Vec<Spend> = (0..n)
                    .map(|l| {
                        coin.spend(
                            &mut rng,
                            &svc.params,
                            &NodePath::from_index(2, l as u64),
                            b"",
                        )
                    })
                    .collect();
                let (tampered, reused_leaf) = if i == cheater {
                    let mut bad =
                        coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, 3), b"");
                    bad.bank_sig += &ppms_bigint::BigUint::from(1u32);
                    let reuse = coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, 0), b"");
                    (Some(bad), Some(reuse))
                } else {
                    (None, None)
                };
                ClientPlan {
                    account,
                    spends,
                    tampered,
                    reused_leaf,
                }
            })
            .collect()
    }

    /// Plays one client's deposits. Every item is a single-spend
    /// `DepositBatch` under a fresh idempotency key, so in the
    /// concurrent run the shard's drain mixes items from different
    /// clients into one cross-client batch. The first deposit is also
    /// retransmitted under the *same* key from a second thread released
    /// by the same barrier, so the duplicate can share a drain with the
    /// original.
    fn play(svc: &MaService, plan: ClientPlan, stagger_micros: u64, start: Option<Arc<Barrier>>) {
        let client = svc.client();
        let mut retrans: Option<std::thread::JoinHandle<()>> = None;
        if let Some(b) = &start {
            b.wait();
        }
        for (j, spend) in plan.spends.into_iter().enumerate() {
            if stagger_micros > 0 {
                std::thread::sleep(Duration::from_micros(stagger_micros));
            }
            let id = next_request_id();
            let req = MaRequest::DepositBatch {
                account: plan.account,
                spends: vec![spend],
            };
            if j == 0 {
                // Race a same-key duplicate against the original.
                let dup_client = svc.client();
                let dup_req = req.clone();
                retrans = Some(std::thread::spawn(move || {
                    let resp = dup_client.try_call_keyed(id, dup_req).expect("retransmit");
                    let MaResponse::BatchDeposited {
                        accepted, rejected, ..
                    } = resp
                    else {
                        panic!("retransmit reply: {resp:?}");
                    };
                    assert_eq!((accepted, rejected), (1, 0), "replay must be verbatim");
                }));
            }
            let resp = client.try_call_keyed(id, req).expect("deposit");
            let MaResponse::BatchDeposited {
                accepted, rejected, ..
            } = resp
            else {
                panic!("deposit reply: {resp:?}");
            };
            assert_eq!((accepted, rejected), (1, 0), "valid spend {j} must credit");
        }
        if let Some(h) = retrans {
            h.join().expect("retransmit thread");
        }
        // The cheater's extras ride after its honest items, so they
        // interleave with the other clients' still-running deposits.
        for (bad, expect_note) in [
            (plan.tampered, "tampered"),
            (plan.reused_leaf, "reused-leaf"),
        ] {
            let Some(bad) = bad else { continue };
            let resp = client
                .try_call_keyed(
                    next_request_id(),
                    MaRequest::DepositBatch {
                        account: plan.account,
                        spends: vec![bad],
                    },
                )
                .expect(expect_note);
            let MaResponse::BatchDeposited {
                accepted, rejected, ..
            } = resp
            else {
                panic!("{expect_note} reply: {resp:?}");
            };
            assert_eq!(
                (accepted, rejected),
                (0, 1),
                "{expect_note} spend must be rejected without poisoning the batch"
            );
        }
    }

    /// Runs the logical schedule and returns the final per-client
    /// balances plus the `(batch.items, batch.drains)` deltas of the
    /// deposit phase.
    fn run_schedule(
        seed: u64,
        leaves: &[usize],
        cheater: usize,
        batch: BatchConfig,
        concurrent: bool,
        staggers: &[u64],
    ) -> (Vec<u64>, u64, u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let svc = MaService::spawn_with_config(
            &mut rng,
            DecParams::fixture(2, 6),
            512,
            40,
            ServiceConfig {
                shards: 1,
                batch,
                ..ServiceConfig::default()
            },
        );
        let plans = build_plans(&svc, seed ^ 0x5EED, leaves, cheater);
        let accounts: Vec<_> = plans.iter().map(|p| p.account).collect();
        let items0 = svc.obs.counter("batch.items").get();
        let drains0 = svc.obs.counter("batch.drains").get();

        if concurrent {
            let start = Arc::new(Barrier::new(plans.len()));
            std::thread::scope(|scope| {
                for (i, plan) in plans.into_iter().enumerate() {
                    let svc = &svc;
                    let stagger = staggers[i % staggers.len()];
                    let start = start.clone();
                    scope.spawn(move || play(svc, plan, stagger, Some(start)));
                }
            });
        } else {
            for (i, plan) in plans.into_iter().enumerate() {
                play(&svc, plan, staggers[i % staggers.len()], None);
            }
        }

        let items = svc.obs.counter("batch.items").get() - items0;
        let drains = svc.obs.counter("batch.drains").get() - drains0;
        let balances: Vec<u64> = accounts
            .iter()
            .map(|&account| {
                let client = svc.client();
                let MaResponse::Balance(b) = client.call(MaRequest::Balance { account }) else {
                    panic!("balance");
                };
                b
            })
            .collect();
        svc.shutdown();
        (balances, items, drains)
    }

    /// Deterministic anchor: a concurrent run against the batching
    /// service must form at least one genuine cross-client batch
    /// (items > drains) and still land on the sequential ledger.
    #[test]
    fn concurrent_batched_run_matches_sequential_and_actually_batches() {
        let leaves = [2usize, 2, 2];
        let cheater = 1;
        let staggers = [0u64, 40, 80];
        let (seq, _, _) = run_schedule(
            0xBA7C,
            &leaves,
            cheater,
            BatchConfig {
                max_batch: 1,
                max_delay_micros: 0,
            },
            false,
            &staggers,
        );
        let (bat, items, drains) = run_schedule(
            0xBA7C,
            &leaves,
            cheater,
            BatchConfig {
                max_batch: 8,
                max_delay_micros: 2000,
            },
            true,
            &staggers,
        );
        assert_eq!(seq, bat, "batched ledger diverged from sequential");
        assert_eq!(bat, vec![2, 2, 2], "each unique valid leaf credits once");
        assert!(
            drains < items,
            "no cross-client batch ever formed ({items} items in {drains} drains)"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        // For arbitrary client counts, per-client workloads, cheater
        // position and thread staggering, the batched concurrent run
        // and the batching-free sequential run agree with each other
        // and with the closed-form expectation.
        #[test]
        fn batched_pipeline_is_ledger_equivalent_to_sequential(
            seed in 0u64..(1 << 48),
            leaves in proptest::collection::vec(1usize..=3, 2..=4),
            cheater_pick in 0usize..4,
            staggers in proptest::collection::vec(0u64..200, 4),
        ) {
            let cheater = cheater_pick % leaves.len();
            let seq = run_schedule(
                seed,
                &leaves,
                cheater,
                BatchConfig { max_batch: 1, max_delay_micros: 0 },
                false,
                &staggers,
            );
            let bat = run_schedule(
                seed,
                &leaves,
                cheater,
                BatchConfig { max_batch: 8, max_delay_micros: 2000 },
                true,
                &staggers,
            );
            prop_assert_eq!(&seq.0, &bat.0, "batched vs sequential ledgers");
            let expected: Vec<u64> = leaves.iter().map(|&l| l as u64).collect();
            prop_assert_eq!(bat.0, expected, "each unique valid leaf credits exactly once");
        }
    }
}

// For *any* fault seed, as long as loss stays below the retry budget's
// reach (≤ 30% drop) the retrying fleet converges to the exact ledger a
// fault-free in-process run produces — loss and duplication are
// invisible at the ledger layer.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn lossy_retrying_market_converges(
        seed in 0u64..u64::MAX,
        drop_milli in 0u64..=300,
        dup_milli in 0u64..=250,
    ) {
        let plan = FaultPlan {
            net: SimNetConfig {
                latency_micros: 0,
                jitter_micros: 0,
                drop_rate: drop_milli as f64 / 1000.0,
                seed,
            },
            duplicate_rate: dup_milli as f64 / 1000.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.0,
        };
        let expected = run(TransportKind::InProc, 1);
        let (outcome, _faults) =
            run_service_market_chaos(SEED, 2, N_SPS, W, plan, None)
                .expect("lossy market must converge, not fail");
        prop_assert_eq!(outcome, expected);
    }
}
