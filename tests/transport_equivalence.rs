//! Transport equivalence: the same market rounds must produce
//! identical ledger outcomes whether the messages travel as in-memory
//! enums ([`InProcTransport`]), as serialized wire envelopes over a
//! simulated network ([`SimNetTransport`]), or as real frames over
//! loopback TCP through the admission gate — and regardless of how
//! many shard workers the MA runs. The wire is an implementation
//! detail; the ledger is the ground truth.

use ppms_core::sim::{
    run_service_market, run_service_market_chaos, ServiceMarketOutcome, TcpEquivConfig,
    TransportKind,
};
use ppms_core::{FaultPlan, FlakyConfig, SimNetConfig};
use proptest::prelude::*;

const SEED: u64 = 0xE0;
const N_SPS: usize = 3;
const W: u64 = 3;

fn run(kind: TransportKind, shards: usize) -> ServiceMarketOutcome {
    run_service_market(SEED, shards, N_SPS, W, kind).expect("market run")
}

#[test]
fn inproc_and_simnet_produce_identical_ledgers() {
    let inproc = run(TransportKind::InProc, 1);
    let simnet = run(TransportKind::SimNet(SimNetConfig::default()), 1);
    assert_eq!(inproc, simnet);

    // Sanity on the shared expectations, not just mutual equality.
    assert_eq!(inproc.sp_credited, vec![W; N_SPS]);
    assert_eq!(inproc.sp_balances, vec![W; N_SPS]);
    assert_eq!(inproc.data_reports.len(), N_SPS);
    assert_eq!(inproc.jobs.len(), 1);
    assert_eq!(inproc.undelivered_payments, 0, "every payment delivered");
}

#[test]
fn shard_count_does_not_change_outcomes() {
    let one = run(TransportKind::InProc, 1);
    for shards in [2usize, 4] {
        let sharded = run(TransportKind::InProc, shards);
        assert_eq!(one, sharded, "{shards} shards");
    }
}

#[test]
fn simnet_with_latency_matches_inproc() {
    // Nonzero delay and jitter reorder nothing in this sequential
    // driver, so the ledger must still match exactly.
    let cfg = SimNetConfig {
        latency_micros: 50,
        jitter_micros: 100,
        drop_rate: 0.0,
        seed: 7,
    };
    let inproc = run(TransportKind::InProc, 2);
    let simnet = run(TransportKind::SimNet(cfg), 2);
    assert_eq!(inproc, simnet);
}

// Loopback TCP through the paywall is still the same market: the
// admission traffic (extra accounts, gate fees) must be invisible to
// the ledger audit, and the shard count must stay irrelevant.
#[test]
fn tcp_matches_inproc_and_simnet_across_shard_counts() {
    for shards in [1usize, 4] {
        let inproc = run(TransportKind::InProc, shards);
        let simnet = run(TransportKind::SimNet(SimNetConfig::default()), shards);
        let tcp = run(TransportKind::Tcp(TcpEquivConfig::default()), shards);
        assert_eq!(inproc, tcp, "tcp vs inproc at {shards} shards");
        assert_eq!(simnet, tcp, "tcp vs simnet at {shards} shards");
    }
}

// Seeded stream tears under the client's framing layer force redials,
// re-admissions and App retransmits; behind the aggressive retry
// layer the run must still converge to the fault-free ledger.
#[test]
fn tcp_over_flaky_loopback_behind_retry_converges() {
    let expected = run(TransportKind::InProc, 2);
    let flaky = run(
        TransportKind::Tcp(TcpEquivConfig {
            flaky: Some(FlakyConfig {
                read_fail: 0.02,
                write_fail: 0.02,
                seed: 0xF1AC,
            }),
            retry: true,
            ..TcpEquivConfig::default()
        }),
        2,
    );
    assert_eq!(expected, flaky);
}

// Mixed-version interop at the market level: a fleet of clients
// pinned to the previous wire versions (v3 carries the trace id but
// no span ids; legacy v2 not even the trace id) drives the same
// market through the v4 front door. Degraded observability must be
// the *only* difference — the audited ledger stays identical.
#[test]
fn older_wire_version_clients_produce_identical_ledgers() {
    use ppms_core::wire::{WIRE_VERSION_V2, WIRE_VERSION_V3};

    let expected = run(TransportKind::InProc, 2);
    for version in [WIRE_VERSION_V3, WIRE_VERSION_V2] {
        let outcome = run(
            TransportKind::Tcp(TcpEquivConfig {
                wire_version: Some(version),
                ..TcpEquivConfig::default()
            }),
            2,
        );
        assert_eq!(expected, outcome, "v{version} clients vs v4 server");
    }
}

#[test]
fn simnet_counts_real_envelope_bytes() {
    // A lossy-free SimNet run records every request and response at
    // its encoded size; spot-check the log through a tiny direct run.
    use ppms_core::service::{MaRequest, MaResponse, MaService};
    use ppms_core::{wire, Party};
    use ppms_ecash::DecParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(3);
    let svc = MaService::spawn(&mut rng, DecParams::fixture(2, 6), 512, 40);
    let client = svc.simnet_client(Party::Sp, SimNetConfig::default());
    let MaResponse::Account(account) = client.call(MaRequest::RegisterSpAccount) else {
        panic!("account");
    };

    let entries = svc.traffic.snapshot();
    assert_eq!(entries.len(), 2, "request + response");
    let expected_req = wire::framed_len(Party::Sp, &MaRequest::RegisterSpAccount);
    let expected_resp = wire::framed_len(Party::Ma, &MaResponse::Account(account));
    assert_eq!(entries[0].bytes, expected_req);
    assert_eq!(entries[0].label, "register-sp");
    assert_eq!(entries[1].bytes, expected_resp);
    assert_eq!(entries[1].label, "account");
    svc.shutdown();
}

#[test]
fn simnet_drop_surfaces_as_transport_error() {
    use ppms_core::service::{MaRequest, MaService};
    use ppms_core::{MarketError, Party};
    use ppms_ecash::DecParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(4);
    let svc = MaService::spawn(&mut rng, DecParams::fixture(2, 6), 512, 40);
    let client = svc.simnet_client(
        Party::Sp,
        SimNetConfig {
            drop_rate: 1.0,
            seed: 1,
            ..SimNetConfig::default()
        },
    );
    match client.try_call(MaRequest::RegisterSpAccount) {
        Err(MarketError::Transport(_)) => {}
        other => panic!("expected a dropped message, got {other:?}"),
    }
    svc.shutdown();
}

// For *any* fault seed, as long as loss stays below the retry budget's
// reach (≤ 30% drop) the retrying fleet converges to the exact ledger a
// fault-free in-process run produces — loss and duplication are
// invisible at the ledger layer.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn lossy_retrying_market_converges(
        seed in 0u64..u64::MAX,
        drop_milli in 0u64..=300,
        dup_milli in 0u64..=250,
    ) {
        let plan = FaultPlan {
            net: SimNetConfig {
                latency_micros: 0,
                jitter_micros: 0,
                drop_rate: drop_milli as f64 / 1000.0,
                seed,
            },
            duplicate_rate: dup_milli as f64 / 1000.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.0,
        };
        let expected = run(TransportKind::InProc, 1);
        let (outcome, _faults) =
            run_service_market_chaos(SEED, 2, N_SPS, W, plan, None)
                .expect("lossy market must converge, not fail");
        prop_assert_eq!(outcome, expected);
    }
}
