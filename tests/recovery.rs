//! The durable tier's crash matrix: a keyed deterministic market
//! schedule is killed at seeded points under every fsync discipline
//! and shard count, the process restarts cold from whatever the
//! medium kept (durable prefix + seeded torn tail), and the re-driven
//! schedule must converge on the exact fault-free ledger. Alongside
//! the matrix: byte-identical quiescent recovery, the compaction
//! bound on replay length, refusal of mid-log corruption, fallback
//! past a torn checkpoint publication, fsync lies, and a disk-backed
//! restart through the TCP front door.

use ppms_core::service::{MaClient, MaRequest, MaResponse};
use ppms_core::sim::{
    drive_market_keyed, mint_admission_spends, recover_durable_market, spawn_durable_market,
    KeyedDrive,
};
use ppms_core::{
    DiskStorage, DurabilityConfig, FaultyStorage, Party, SimStorage, Storage, StorageError,
    StorageFaults, SyncPolicy, TcpClientConfig, TcpConfig, TcpFrontDoor, TcpTransport, Transport,
};
use ppms_integration::harness as h;
use std::sync::Arc;

/// A durability config over `storage` with the crash-matrix sizing:
/// small segments (so compaction has something to drop) and
/// auto-checkpoints (so the matrix exercises snapshot + tail
/// recovery, not just log replay).
fn matrix_durability(storage: Arc<dyn Storage>, sync: SyncPolicy) -> DurabilityConfig {
    let mut dur = DurabilityConfig::new(storage);
    dur.sync = sync;
    dur.segment_bytes = 4096;
    dur.checkpoint_every = 16;
    dur
}

/// Runs the full schedule on `svc` and seals the outcome with the
/// shutdown drain.
fn complete(svc: ppms_core::MaService) -> ppms_core::sim::ServiceMarketOutcome {
    let drive = drive_market_keyed(&svc, h::SEED, h::N_SPS, h::W, u64::MAX).expect("full drive");
    let KeyedDrive::Complete(mut outcome) = drive else {
        panic!("unlimited budget cannot pause");
    };
    outcome.undelivered_payments = svc.shutdown();
    *outcome
}

/// Drives `svc` for exactly `calls` keyed requests and asserts the
/// schedule paused there.
fn drive_to(svc: &ppms_core::MaService, calls: u64) {
    match drive_market_keyed(svc, h::SEED, h::N_SPS, h::W, calls).expect("budgeted drive") {
        KeyedDrive::Paused { calls: got } => assert_eq!(got, calls),
        KeyedDrive::Complete(_) => panic!("kill point {calls} lies past the schedule"),
    }
}

#[test]
fn durable_fault_free_drive_matches_in_proc_baseline() {
    // The keyed durable schedule and the plain in-proc drive are two
    // spellings of the same market: their audited outcomes must be
    // equal, so the crash matrix genuinely converges to the ledger
    // every other harness (chaos grid, transport equivalence)
    // converges to.
    assert_eq!(h::durable_baseline(), h::baseline());
}

/// One crash-matrix half (split by fsync policy so the two run as
/// parallel tests): for every kill point and shard count, kill the
/// first instance mid-schedule, recover from the crash image, re-run
/// the whole keyed schedule and compare the audited ledger to the
/// fault-free outcome.
fn run_matrix(sync: SyncPolicy) {
    let expected = h::durable_baseline();
    for &shards in &h::MATRIX_SHARDS {
        for &kill_at in &h::KILL_POINTS {
            assert!(kill_at < h::SCHEDULE_CALLS);
            let storage = SimStorage::new();
            let dur = matrix_durability(Arc::new(storage.clone()), sync);
            let svc = spawn_durable_market(h::SEED, shards, dur.clone()).unwrap_or_else(|e| {
                panic!("cell shards={shards} sync={sync} kill={kill_at}: spawn: {e}")
            });
            drive_to(&svc, kill_at);
            // The kill: the process vanishes; the medium keeps each
            // file's durable prefix plus a seeded torn tail of
            // whatever was never fsynced.
            let image = storage.crash_image(0xC4A5 ^ (kill_at << 8) ^ shards as u64);
            svc.shutdown();

            let mut recov = dur;
            recov.storage = Arc::new(image);
            let (svc, report) =
                recover_durable_market(h::SEED, shards, recov).unwrap_or_else(|e| {
                    panic!("cell shards={shards} sync={sync} kill={kill_at}: recovery: {e}")
                });
            if report.snapshot_lsn > 0 {
                // The compaction bound: replay reads the post-snapshot
                // tail, never the whole history (2 records per call).
                assert!(
                    (report.replayed_records as u64) < 2 * kill_at,
                    "cell shards={shards} sync={sync} kill={kill_at}: \
                     replayed {} of {} records despite a snapshot",
                    report.replayed_records,
                    2 * kill_at
                );
            }
            assert_eq!(
                complete(svc),
                expected,
                "cell shards={shards} sync={sync} kill={kill_at} diverged"
            );
        }
    }
}

#[test]
fn crash_matrix_fsync_always_converges() {
    run_matrix(SyncPolicy::Always);
}

#[test]
fn crash_matrix_group_commit_converges() {
    // Under group commit, acknowledged requests inside the fsync
    // window die with the crash; the re-driven schedule re-executes
    // them, which is exactly the policy's documented contract.
    run_matrix(SyncPolicy::Batch { every: 4 });
}

#[test]
fn cold_recovery_is_byte_identical_at_quiescence() {
    // With fsync-always and a quiescent shutdown point, recovery is
    // not merely convergent: the ledger and bulletin are *equal* as
    // data structures before a single new request runs.
    let storage = SimStorage::new();
    let dur = DurabilityConfig::new(Arc::new(storage.clone()));
    let svc = spawn_durable_market(h::SEED, 2, dur).expect("durable spawn");
    let drive = drive_market_keyed(&svc, h::SEED, h::N_SPS, h::W, u64::MAX).expect("full drive");
    let KeyedDrive::Complete(mut outcome) = drive else {
        panic!("unlimited budget cannot pause");
    };
    let bank_before = svc.bank.snapshot();
    let jobs_before = svc.bulletin.list();
    let image = storage.crash_image(0xB17E);
    outcome.undelivered_payments = svc.shutdown();

    let (svc, report) = recover_durable_market(h::SEED, 2, DurabilityConfig::new(Arc::new(image)))
        .expect("recovery");
    assert_eq!(svc.bank.snapshot(), bank_before, "ledger must be identical");
    assert_eq!(
        svc.bulletin.list(),
        jobs_before,
        "bulletin must be identical"
    );
    assert_eq!(report.discarded_inflight, 0, "quiescent log has no orphans");
    // Re-driving the whole schedule answers every step from the
    // recovered dedup cache — same outcome, nothing re-executed.
    let faults = svc.faults.clone();
    assert_eq!(complete(svc), *outcome);
    assert_eq!(
        faults.dedup_replays(),
        h::SCHEDULE_CALLS,
        "every re-driven call must replay from the recovered cache"
    );
}

#[test]
fn checkpoint_compaction_bounds_recovery_replay() {
    let storage = SimStorage::new();
    let mut dur = DurabilityConfig::new(Arc::new(storage.clone()));
    dur.segment_bytes = 1024;
    let svc = spawn_durable_market(h::SEED, 2, dur.clone()).expect("durable spawn");
    drive_to(&svc, 11);
    let covered = svc.checkpoint().expect("checkpoint");
    assert_eq!(covered, 22, "every request journals Begin + Commit");
    // Compaction dropped every segment wholly below the snapshot: the
    // oldest remaining segment no longer starts at LSN 0.
    let mut segments: Vec<String> = storage
        .list()
        .expect("list")
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .collect();
    segments.sort();
    let first_start =
        u64::from_str_radix(&segments[0][4..20], 16).expect("segment name carries its start LSN");
    assert!(first_start > 0, "compaction kept the genesis segment");

    // Six more calls past the checkpoint, then the crash.
    drive_to(&svc, 17);
    let image = storage.crash_image(0x10AF);
    svc.shutdown();
    let mut recov = dur;
    recov.storage = Arc::new(image);
    let (svc, report) = recover_durable_market(h::SEED, 2, recov).expect("recovery");
    assert_eq!(report.snapshot_lsn, covered);
    assert_eq!(
        report.replayed_records, 12,
        "replay must read exactly the post-snapshot tail"
    );
    assert_eq!(complete(svc), h::durable_baseline());
}

#[test]
fn mid_log_corruption_is_refused_with_precise_error() {
    let storage = SimStorage::new();
    let mut dur = DurabilityConfig::new(Arc::new(storage.clone()));
    dur.segment_bytes = 2048;
    let svc = spawn_durable_market(h::SEED, 1, dur.clone()).expect("durable spawn");
    drive_to(&svc, 11);
    svc.shutdown();

    let mut segments: Vec<String> = storage
        .list()
        .expect("list")
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .collect();
    segments.sort();
    assert!(segments.len() >= 2, "the log must span several segments");
    // Bit rot inside the first frame's body of the *first* segment —
    // history before the tail, where tearing is never legitimate.
    storage.flip_bit(&segments[0], 24, 0x04);
    match recover_durable_market(h::SEED, 1, dur) {
        Err(StorageError::Corrupt { file, offset, .. }) => {
            assert_eq!(file, segments[0], "the error must name the rotten file");
            assert!(
                offset < storage.len(&segments[0]),
                "the error must locate the frame inside the file"
            );
        }
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("recovery must refuse to rebuild from corrupted history"),
    }
}

#[test]
fn torn_checkpoint_falls_back_to_previous_snapshot() {
    let storage = SimStorage::new();
    let dur = DurabilityConfig::new(Arc::new(storage.clone()));
    let svc = spawn_durable_market(h::SEED, 2, dur.clone()).expect("durable spawn");
    drive_to(&svc, 11);
    let covered = svc.checkpoint().expect("checkpoint");
    drive_to(&svc, 17);
    svc.shutdown();
    // A later checkpoint whose publication died mid-write: the file
    // exists under the next covered LSN but holds a truncated
    // non-frame. Recovery must skip it and restart from the previous
    // generation (which compaction never outran — segments are only
    // dropped after a *successful* save).
    let torn_covered = covered + 12;
    storage
        .write_atomic(
            &format!("snap-{torn_covered:016x}.snap"),
            b"torn checkpoint publication",
        )
        .expect("forge torn snapshot");

    let (svc, report) = recover_durable_market(h::SEED, 2, dur).expect("recovery");
    assert_eq!(
        report.snapshots_skipped, 1,
        "the torn generation is skipped"
    );
    assert_eq!(
        report.snapshot.as_deref(),
        Some(format!("snap-{covered:016x}.snap").as_str()),
        "recovery restarts from the previous snapshot"
    );
    assert_eq!(report.snapshot_lsn, covered);
    assert_eq!(
        report.replayed_records, 12,
        "the fallback replays the tail the torn snapshot would have covered"
    );
    assert_eq!(complete(svc), h::durable_baseline());
}

#[test]
fn fsync_lies_lose_acknowledged_state_but_recovery_converges() {
    // A lying medium (drive write-cache, dishonest hypervisor):
    // `sync` returns Ok without persisting. Acknowledged requests die
    // with the crash even under fsync-always — and the re-driven
    // schedule must still converge, exactly like the group-commit
    // window.
    let sim = SimStorage::new();
    let faulty = FaultyStorage::new(
        Arc::new(sim.clone()),
        StorageFaults {
            sync_lie: 0.5,
            seed: 0x11E5,
            ..StorageFaults::default()
        },
    );
    let mut dur = DurabilityConfig::new(Arc::new(faulty));
    // One segment for the whole run: a lied-away tail then lands at
    // the *end* of the log (tolerated torn tail), not in the middle
    // of history (refused).
    dur.segment_bytes = 1 << 20;
    let svc = spawn_durable_market(h::SEED, 2, dur).expect("durable spawn");
    drive_to(&svc, 17);
    let live: usize = sim
        .list()
        .expect("list")
        .iter()
        .filter(|n| n.starts_with("wal-"))
        .map(|n| sim.len(n))
        .sum();
    let image = sim.crash_image(0x0F5C);
    let kept: usize = image
        .list()
        .expect("list")
        .iter()
        .filter(|n| n.starts_with("wal-"))
        .map(|n| image.len(n))
        .sum();
    svc.shutdown();
    assert!(
        kept < live,
        "the fsync lies must actually have lost acknowledged bytes"
    );

    let (svc, _report) = recover_durable_market(h::SEED, 2, DurabilityConfig::new(Arc::new(image)))
        .expect("recovery");
    assert_eq!(complete(svc), h::durable_baseline());
}

#[test]
fn disk_backed_front_door_survives_restart() {
    // The production path end to end: a DiskStorage-backed service
    // behind the TCP front door, a paying client, a checkpoint that
    // captures the admission gate's state through the reactor
    // rendezvous, a restart, and a second front door serving the
    // recovered market. Hermetic: everything lives under a scratch
    // dir in std::env::temp_dir(), removed at the end.
    let dir = std::env::temp_dir().join(format!("ppms-recovery-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let seed = 0xD15C;
    let account = {
        let disk = DiskStorage::open(&dir).expect("open scratch storage");
        let svc = spawn_durable_market(seed, 2, DurabilityConfig::new(Arc::new(disk)))
            .expect("durable spawn");
        let mut door =
            TcpFrontDoor::spawn(&svc, "127.0.0.1:0", TcpConfig::default()).expect("front door");
        let transport = Arc::new(TcpTransport::new(TcpClientConfig::new(door.addr())));
        transport.load_wallet(mint_admission_spends(&svc, seed, 8).expect("wallet"));
        let client = MaClient::new(transport as Arc<dyn Transport>, Party::Sp);
        let MaResponse::Account(account) = client.call(MaRequest::RegisterSpAccount) else {
            panic!("registration through the admitted connection");
        };
        let covered = svc.checkpoint().expect("checkpoint with a live gate");
        assert!(covered > 0);
        door.shutdown();
        svc.shutdown();
        account
    };

    let disk = DiskStorage::open(&dir).expect("reopen scratch storage");
    let (svc, report) = recover_durable_market(seed, 2, DurabilityConfig::new(Arc::new(disk)))
        .expect("disk-backed recovery");
    assert!(report.snapshot.is_some(), "the checkpoint must be found");
    let mut door =
        TcpFrontDoor::spawn(&svc, "127.0.0.1:0", TcpConfig::default()).expect("recovered door");
    let transport = Arc::new(TcpTransport::new(TcpClientConfig::new(door.addr())));
    transport.load_wallet(mint_admission_spends(&svc, seed ^ 1, 8).expect("fresh wallet"));
    let client = MaClient::new(transport as Arc<dyn Transport>, Party::Sp);
    // The account registered before the restart is still on the
    // ledger, served through a freshly admitted connection.
    let MaResponse::Balance(balance) = client.call(MaRequest::Balance { account }) else {
        panic!("pre-restart account must survive the restart");
    };
    assert_eq!(balance, 0);
    door.shutdown();
    svc.shutdown();
    std::fs::remove_dir_all(&dir).expect("scratch cleanup");
}

/// Satellite of the causal-span work: the span context persisted into
/// each `WalRecord::Begin` survives the crash, so recovery replay
/// re-attributes every replayed entry to the *originating* trace id —
/// a post-crash flight recorder reads like the pre-crash one.
#[cfg(not(feature = "no-op"))]
#[test]
fn recovery_replay_reattributes_entries_to_their_originating_traces() {
    use ppms_core::next_request_id;
    use ppms_core::service::{MaService, ServiceConfig};
    use ppms_ecash::DecParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TRACES: [u64; 3] = [
        0x4EC0_0000_0000_0001,
        0x4EC0_0000_0000_0002,
        0x4EC0_0000_0000_0003,
    ];
    let storage = SimStorage::new();
    let dur = DurabilityConfig::new(Arc::new(storage.clone())); // fsync Always
    let mut rng = StdRng::seed_from_u64(0x7A50);
    let svc = MaService::spawn_durable(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig::default(),
        dur.clone(),
    )
    .expect("durable spawn");
    let client = svc.client();
    let MaResponse::JobId(job) = client
        .try_call_traced(
            next_request_id(),
            TRACES[0],
            MaRequest::PublishJob {
                description: "traced".into(),
                payment: 1,
                pseudonym: vec![7],
            },
        )
        .expect("publish")
    else {
        panic!("publish reply");
    };
    for trace in &TRACES[1..] {
        let resp = client
            .try_call_traced(
                next_request_id(),
                *trace,
                MaRequest::LaborRegister {
                    job_id: job,
                    sp_pubkey: vec![*trace as u8],
                },
            )
            .expect("labor");
        assert!(matches!(resp, MaResponse::Ok), "{resp:?}");
    }

    // The kill: every append above was fsynced, so the crash image
    // holds the full journal including the persisted span contexts.
    let image = storage.crash_image(0x4EC0);
    svc.shutdown();

    let mut recov = dur;
    recov.storage = Arc::new(image);
    let mut rng = StdRng::seed_from_u64(0x7A50);
    let (svc, report) = MaService::recover(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig::default(),
        recov,
    )
    .expect("recovery");
    assert!(
        report.replayed_records >= 2 * TRACES.len(),
        "all traced operations must replay, got {}",
        report.replayed_records
    );

    // Replay runs inside the (single) shard worker before it serves
    // its first request, so one round-trip is a replay barrier; only
    // then is the recorder guaranteed to name every original trace.
    let client = svc.client();
    let resp = client.try_call(MaRequest::RegisterSpAccount).expect("sync");
    assert!(matches!(resp, MaResponse::Account(_)), "{resp:?}");
    let events: Vec<_> = svc.recorders().iter().flat_map(|r| r.snapshot()).collect();
    for trace in TRACES {
        assert!(
            events
                .iter()
                .any(|e| e.label == "replayed" && e.trace_id == trace),
            "replay must re-attribute to trace {trace:#x}: {events:?}"
        );
    }
    svc.shutdown();
}

#[test]
fn mid_batch_crash_in_group_commit_window_loses_no_item_and_doubles_none() {
    // The batching tier's torn window under the durable WAL: with
    // group commit (`SyncPolicy::Batch`) the deposit's Begin and
    // Commit are *appended* but not yet fsynced when the worker dies
    // between batch verification and the group-commit flush. The
    // process kill then tears the unsynced tail off the medium, so
    // the restarted service has never heard of the deposit — the
    // retry under the same key must *re-execute* (not replay), and
    // the item must land exactly once.
    use ppms_core::next_request_id;
    use ppms_core::service::{MaService, MidBatchCrash, ServiceConfig};
    use ppms_crypto::cl::ClKeyPair;
    use ppms_ecash::{Coin, DecParams, NodePath};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let storage = SimStorage::new();
    let mut dur = DurabilityConfig::new(Arc::new(storage.clone()));
    dur.sync = SyncPolicy::Batch { every: 1000 }; // wide window: nothing fsyncs on its own
    let config = ServiceConfig {
        shards: 1,
        // Begins: RegisterSp (1), RegisterJo (2), Withdraw (3), then
        // the deposit (4) — the crash fires after the deposit's
        // Commit append, before the group-commit fsync and before the
        // held reply is released.
        crash_mid_batch: Some(MidBatchCrash {
            shard: 0,
            at_begin: 4,
        }),
        ..ServiceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0x6C07);
    let svc = MaService::spawn_durable(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        config,
        dur.clone(),
    )
    .expect("durable spawn");
    let client = svc.client();
    let MaResponse::Account(sp) = client.call(MaRequest::RegisterSpAccount) else {
        panic!("sp account");
    };
    let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
    let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
        funds: 50,
        clpk: cl.public.clone(),
    }) else {
        panic!("jo account");
    };
    let mut coin = Coin::mint(&mut rng, &svc.params);
    let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
    let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
    let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
        account: jo,
        nonce: 1,
        auth,
        blinded,
    }) else {
        panic!("withdraw");
    };
    assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));
    // Make the setup durable: the checkpoint snapshot is published
    // atomically, so only the deposit's records live in the unsynced
    // tail.
    let covered = svc.checkpoint().expect("checkpoint");
    assert_eq!(covered, 6, "setup is three requests = six records");

    let spend = coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, 0), b"");
    let deposit = MaRequest::DepositBatch {
        account: sp,
        spends: vec![spend],
    };
    let id = next_request_id();
    let first = client.try_call_keyed(id, deposit.clone());
    assert!(first.is_err(), "mid-batch crash must hang up the client");

    // The kill. Pick a tear seed that actually cuts into the unsynced
    // tail (all but one tear offset do): the deposit's Commit — the
    // journal's last record — dies with the process.
    let live_wal: usize = storage
        .list()
        .expect("list")
        .iter()
        .filter(|n| n.starts_with("wal-"))
        .map(|n| storage.len(n))
        .sum();
    let image = (0..64u64)
        .map(|s| storage.crash_image(0x7EA2 + s))
        .find(|img| {
            let kept: usize = img
                .list()
                .expect("list")
                .iter()
                .filter(|n| n.starts_with("wal-"))
                .map(|n| img.len(n))
                .sum();
            kept < live_wal
        })
        .expect("some tear seed must cut the unsynced tail");
    svc.shutdown();

    let mut recov = dur;
    recov.storage = Arc::new(image);
    let mut rng = StdRng::seed_from_u64(0x6C07);
    let (svc, report) = MaService::recover(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards: 1,
            ..ServiceConfig::default()
        },
        recov,
    )
    .expect("recovery");
    assert_eq!(
        report.snapshot_lsn, covered,
        "setup restored from the snapshot"
    );

    // The retry under the same key re-executes — the journal never
    // durably heard of the deposit, so there is nothing to replay.
    let client = svc.client();
    let retry = client.try_call_keyed(id, deposit.clone()).expect("retry");
    let MaResponse::BatchDeposited {
        total,
        accepted,
        rejected,
    } = retry
    else {
        panic!("retried deposit reply: {retry:?}");
    };
    assert_eq!(
        (total, accepted, rejected),
        (1, 1, 0),
        "the item must not be lost"
    );
    assert_eq!(
        svc.faults.dedup_replays(),
        0,
        "a torn-away commit cannot be replayed, only re-executed"
    );

    // And a further retransmit now *does* replay — one execution total.
    let replay = client.try_call_keyed(id, deposit).expect("retransmit");
    assert!(
        matches!(replay, MaResponse::BatchDeposited { accepted: 1, .. }),
        "verbatim replay, got {replay:?}"
    );
    assert_eq!(svc.faults.dedup_replays(), 1);
    let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: sp }) else {
        panic!("balance");
    };
    assert_eq!(
        b, 1,
        "exactly one credit across crash, tear, retry and replay"
    );
    svc.shutdown();
}
