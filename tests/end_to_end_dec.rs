//! End-to-end PPMSdec rounds (paper Algorithm 1) across every crate:
//! bigint → primes → crypto → ecash → core.

use ppms_ecash::CashBreak;
use ppms_integration::{dec_market, TEST_RSA_BITS};

#[test]
fn full_round_pcba() {
    let (mut market, mut rng) = dec_market(1, 3);
    let face = market.params().face_value();
    let mut jo = market.register_jo(&mut rng, 2 * face, TEST_RSA_BITS);
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);

    let outcome = market
        .run_round(
            &mut rng,
            &mut jo,
            &sp,
            "urban noise mapping",
            5,
            CashBreak::Pcba,
            b"db(A) readings",
        )
        .expect("round completes");

    assert_eq!(outcome.credited, 5);
    assert_eq!(outcome.deposit_stream.iter().sum::<u64>(), 5);
    // PCBA of 5 = 101b → coins {1, 4}, fakes pad to L+1 = 4 slots.
    assert_eq!(outcome.real_coins, 2);
    assert_eq!(outcome.fake_coins, 2);

    // Ledger effects: SP gained w; JO paid the full face value into
    // e-cash (change is still held in the coin).
    assert_eq!(market.bank.balance(sp.account).unwrap(), 5);
    assert_eq!(market.bank.balance(jo.account).unwrap(), 2 * face - face);
    assert_eq!(jo.change_value(market.params()), face - 5);
}

#[test]
fn full_round_unitary() {
    let (mut market, mut rng) = dec_market(2, 2);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);

    let outcome = market
        .run_round(
            &mut rng,
            &mut jo,
            &sp,
            "transit tracking",
            3,
            CashBreak::Unitary,
            b"gps traces",
        )
        .expect("round completes");

    assert_eq!(outcome.credited, 3);
    assert_eq!(outcome.real_coins, 3, "three unitary coins");
    assert_eq!(outcome.fake_coins, 1, "padded to 2^L = 4 slots");
    assert!(
        outcome.deposit_stream.iter().all(|&v| v == 1),
        "all deposits unitary"
    );
}

#[test]
fn full_round_epcba() {
    let (mut market, mut rng) = dec_market(3, 3);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);

    // w = 8 = 2^L: EPCBA prefers 7+1 → coins {1,2,4,1}.
    let outcome = market
        .run_round(
            &mut rng,
            &mut jo,
            &sp,
            "air quality",
            8,
            CashBreak::Epcba,
            b"pm2.5",
        )
        .expect("round completes");
    assert_eq!(outcome.credited, 8);
    assert_eq!(outcome.real_coins, 4);
    let mut stream = outcome.deposit_stream.clone();
    stream.sort_unstable();
    assert_eq!(stream, vec![1, 1, 2, 4]);
}

#[test]
fn multiple_sps_one_coin() {
    // One withdrawal pays several SPs from disjoint parts of the tree.
    let (mut market, mut rng) = dec_market(4, 3);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp1 = market.register_sp(&mut rng, TEST_RSA_BITS);
    let sp2 = market.register_sp(&mut rng, TEST_RSA_BITS);

    market.register_job(&jo, "shared-coin job", 7);
    market.withdraw(&mut rng, &mut jo).unwrap();
    let jo_pk = jo_job_pk(&market);

    let pk1 = market.labor_registration(&sp1);
    let (ct1, ..) = market
        .submit_payment(&mut rng, &mut jo, &pk1, 3, CashBreak::Pcba)
        .unwrap();
    let (credited1, _) = market.deposit_payment(&sp1, &jo_pk, &ct1).unwrap();

    let pk2 = market.labor_registration(&sp2);
    let (ct2, ..) = market
        .submit_payment(&mut rng, &mut jo, &pk2, 4, CashBreak::Pcba)
        .unwrap();
    let (credited2, _) = market.deposit_payment(&sp2, &jo_pk, &ct2).unwrap();

    assert_eq!(credited1, 3);
    assert_eq!(credited2, 4);
    assert_eq!(jo.change_value(market.params()), 1);
}

#[test]
fn change_redemption_returns_remainder() {
    let (mut market, mut rng) = dec_market(5, 3);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);
    market
        .run_round(&mut rng, &mut jo, &sp, "job", 5, CashBreak::Pcba, b"d")
        .unwrap();
    let before = market.bank.balance(jo.account).unwrap();
    let redeemed = market.redeem_change(&mut rng, &mut jo).unwrap();
    assert_eq!(redeemed, 3, "face 8 - paid 5");
    assert_eq!(market.bank.balance(jo.account).unwrap(), before + 3);
    // Supply is conserved end-to-end once change is redeemed:
    // JO lost exactly w, SP gained exactly w.
    assert_eq!(market.bank.balance(jo.account).unwrap(), 100 - 5);
}

#[test]
fn insufficient_funds_rejected() {
    let (mut market, mut rng) = dec_market(6, 3);
    let mut jo = market.register_jo(&mut rng, 1, TEST_RSA_BITS); // cannot afford 2^L = 8
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);
    let err = market
        .run_round(&mut rng, &mut jo, &sp, "job", 5, CashBreak::Pcba, b"d")
        .unwrap_err();
    assert_eq!(err, ppms_core::MarketError::InsufficientFunds);
}

#[test]
fn traffic_and_metrics_recorded() {
    let (mut market, mut rng) = dec_market(7, 3);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);
    market
        .run_round(&mut rng, &mut jo, &sp, "job", 5, CashBreak::Pcba, b"data")
        .unwrap();

    use ppms_core::{Op, Party};
    // JO produced ZK proofs for every real coin; SP verified them.
    assert!(market.metrics.get(Party::Jo, Op::Zkp) > 0);
    assert!(market.metrics.get(Party::Sp, Op::Zkp) > 0);
    assert!(
        market.metrics.get(Party::Sp, Op::Dec) >= 2,
        "payload decrypt + sig verify"
    );
    // Traffic flowed on all steps of Algorithm 1.
    for label in [
        "job-registration",
        "withdrawal-request",
        "e-cash",
        "labor-registration",
        "payment-submission",
        "data-report",
        "payment-delivery",
        "deposit",
    ] {
        assert!(
            market.traffic.has_label(label),
            "missing traffic step {label}"
        );
    }
    assert!(market.traffic.total_bytes() > 0);
}

/// The JO's pseudonymous job verification key, as the SP learns it
/// from the bulletin board.
fn jo_job_pk(market: &ppms_core::ppmsdec::DecMarket) -> ppms_crypto::rsa::RsaPublicKey {
    let job = market.bulletin.list().pop().expect("job published");
    ppms_crypto::rsa::RsaPublicKey::from_bytes(&job.pseudonym).expect("valid key")
}
