//! Chaos harness: the market must survive a lossy, duplicating,
//! reordering, corrupting, crashing substrate and still converge to
//! the exact ledger a fault-free run produces. Faults are injected
//! from a seeded [`FaultPlan`] so every schedule is replayable; the
//! conservation invariant is equality with the in-process baseline,
//! not merely "no error".

use ppms_core::service::{
    BatchConfig, MaRequest, MaResponse, MaService, MidBatchCrash, ServiceConfig,
};
use ppms_core::sim::run_service_market_chaos;
use ppms_core::{next_request_id, CrashPoint};
use ppms_crypto::cl::ClKeyPair;
use ppms_ecash::{Coin, DecParams, NodePath};
use ppms_integration::harness::{baseline, plan, N_SPS, SEED, W};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn chaos_grid_converges_to_fault_free_ledger() {
    // A small seeded grid over the whole fault surface. Every cell
    // must land on the identical ledger; across the grid the faults
    // must actually have fired (otherwise the harness tests nothing).
    let expected = baseline();
    let grid = [
        plan(0xC0A5, 0.20, 0.00, 0.00, 0.00), // pure loss
        plan(0xC0A6, 0.00, 0.25, 0.15, 0.00), // duplication + stale replay
        plan(0xC0A7, 0.00, 0.00, 0.00, 0.20), // corruption
        plan(0xC0A8, 0.15, 0.10, 0.10, 0.10), // everything at once
    ];
    let mut retries = 0;
    let mut replays = 0;
    for (i, p) in grid.iter().enumerate() {
        let (outcome, faults) = run_service_market_chaos(SEED, 2, N_SPS, W, *p, None)
            .unwrap_or_else(|e| panic!("grid cell {i} failed: {e:?}"));
        assert_eq!(outcome, expected, "grid cell {i} diverged");
        retries += faults.retries;
        replays += faults.dedup_replays;
    }
    assert!(retries > 0, "the grid never exercised a retransmission");
    assert!(
        replays > 0,
        "the grid never replayed a cached response (executed-but-unacked window untested)"
    );
}

#[test]
fn crashed_shard_recovers_and_market_converges() {
    // Seed-pinned supervision test: shard 0 is killed after journaling
    // its third request, the supervisor respawns it over the journal,
    // and the retrying clients carry the market to the same ledger as
    // the fault-free run. The crashed request's Begin is the journal's
    // orphan tail, discarded on replay.
    let expected = baseline();
    let crash = CrashPoint {
        shard: 0,
        at_request: 3,
    };
    let (outcome, faults) = run_service_market_chaos(
        SEED,
        2,
        N_SPS,
        W,
        plan(0xDEAD, 0.0, 0.0, 0.0, 0.0),
        Some(crash),
    )
    .expect("market survives a shard crash");
    assert_eq!(outcome, expected, "crash schedule changed the ledger");
    assert_eq!(faults.shard_respawns, 1, "exactly one respawn");
    assert_eq!(faults.wal_discarded, 1, "exactly the in-flight Begin");
    assert!(
        faults.wal_commits > 0,
        "the journal must have committed work"
    );
}

#[test]
fn crash_under_loss_still_converges() {
    // Crash and packet loss together: the respawned shard replays its
    // journal while the retry layer absorbs both the crash hang-up and
    // the dropped frames.
    let expected = baseline();
    let crash = CrashPoint {
        shard: 1,
        at_request: 2,
    };
    let (outcome, faults) = run_service_market_chaos(
        SEED,
        2,
        N_SPS,
        W,
        plan(0xBEEF, 0.15, 0.10, 0.0, 0.0),
        Some(crash),
    )
    .expect("market survives crash + loss");
    assert_eq!(outcome, expected);
    assert_eq!(faults.shard_respawns, 1);
}

#[test]
fn double_spend_is_still_caught_under_retries() {
    // The dedup cache must distinguish a *retransmit* (same request
    // id — replay the original verdict, no double-spend flag) from a
    // *genuine* reuse of the same spends under a fresh id (caught).
    let mut rng = StdRng::seed_from_u64(0x0DD5);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        },
    );
    let client = svc.client();
    let MaResponse::Account(sp) = client.call(MaRequest::RegisterSpAccount) else {
        panic!("sp account");
    };
    let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
    let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
        funds: 50,
        clpk: cl.public.clone(),
    }) else {
        panic!("jo account");
    };
    let mut coin = Coin::mint(&mut rng, &svc.params);
    let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
    let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
    let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
        account: jo,
        nonce: 1,
        auth,
        blinded,
    }) else {
        panic!("withdraw");
    };
    assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));
    let s1 = coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, 0), b"");
    let s2 = coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, 1), b"");
    let batch = MaRequest::DepositBatch {
        account: sp,
        spends: vec![s1, s2],
    };

    // First delivery.
    let id = next_request_id();
    let first = client
        .try_call_keyed(id, batch.clone())
        .expect("first deposit");
    let MaResponse::BatchDeposited {
        total,
        accepted,
        rejected,
    } = first
    else {
        panic!("batch response");
    };
    assert_eq!((total, accepted, rejected), (2, 2, 0));

    // Retransmit under the *same* id: the cached verdict comes back
    // verbatim and the ledger does not move.
    let replay = client
        .try_call_keyed(id, batch.clone())
        .expect("retransmit");
    let MaResponse::BatchDeposited {
        accepted: a2,
        rejected: r2,
        ..
    } = replay
    else {
        panic!("replayed batch response");
    };
    assert_eq!((a2, r2), (2, 0), "retransmit must not be re-executed");
    assert_eq!(svc.faults.dedup_replays(), 1);
    let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: sp }) else {
        panic!("balance");
    };
    assert_eq!(b, 2, "the retransmit must not double-credit");

    // The same spends under a *fresh* id are a genuine double-spend.
    let fresh = client
        .try_call_keyed(next_request_id(), batch)
        .expect("fresh-id deposit");
    let MaResponse::BatchDeposited {
        accepted: a3,
        rejected: r3,
        ..
    } = fresh
    else {
        panic!("fresh batch response");
    };
    assert_eq!((a3, r3), (0, 2), "genuine reuse must be caught");
    svc.shutdown();
}

#[test]
fn retried_batch_deposit_survives_crash_and_replays_one_outcome() {
    // Retry-during-batch-verify: the shard dies after journaling the
    // DepositBatch Begin (before the combined batch verification
    // runs), the retry under the same id re-executes on the respawned
    // worker, and a later retransmit replays the *identical*
    // batch-level BatchDeposited from the dedup cache — the batch is
    // one WAL/dedup unit, never per-item, so no partial credit can
    // leak across the crash.
    let mut rng = StdRng::seed_from_u64(0x0DD6);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards: 1,
            // Begins: RegisterSp, RegisterJo, Withdraw, then the batch.
            crash: Some(CrashPoint {
                shard: 0,
                at_request: 4,
            }),
            ..ServiceConfig::default()
        },
    );
    let client = svc.client();
    let MaResponse::Account(sp) = client.call(MaRequest::RegisterSpAccount) else {
        panic!("sp account");
    };
    let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
    let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
        funds: 50,
        clpk: cl.public.clone(),
    }) else {
        panic!("jo account");
    };
    let mut coin = Coin::mint(&mut rng, &svc.params);
    let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
    let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
    let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
        account: jo,
        nonce: 1,
        auth,
        blinded,
    }) else {
        panic!("withdraw");
    };
    assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));
    // A mixed batch: two valid leaves plus an intra-batch duplicate,
    // so the cached outcome has both accepted and rejected items.
    let s1 = coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, 0), b"");
    let s2 = coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, 1), b"");
    let dup = coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, 0), b"");
    let batch = MaRequest::DepositBatch {
        account: sp,
        spends: vec![s1, s2, dup],
    };

    // First delivery hits the crash point: journaled, never verified.
    let id = next_request_id();
    let first = client.try_call_keyed(id, batch.clone());
    assert!(first.is_err(), "crash must surface as a transport error");

    // Retry under the same id: the respawned worker discards the
    // orphan Begin and runs the whole batch verification once.
    let retry = client
        .try_call_keyed(id, batch.clone())
        .expect("retry after respawn");
    let MaResponse::BatchDeposited {
        total,
        accepted,
        rejected,
    } = retry
    else {
        panic!("batch response, got {retry:?}");
    };
    assert_eq!((total, accepted, rejected), (2, 2, 1));
    assert_eq!(svc.faults.shard_respawns(), 1);
    assert_eq!(svc.faults.snapshot().wal_discarded, 1);

    // Retransmit again: the identical batch-level outcome comes back
    // from the dedup cache without re-verification or re-credit.
    let replay = client.try_call_keyed(id, batch).expect("retransmit");
    let MaResponse::BatchDeposited {
        total: t2,
        accepted: a2,
        rejected: r2,
    } = replay
    else {
        panic!("replayed batch response");
    };
    assert_eq!((t2, a2, r2), (2, 2, 1), "replay must be verbatim");
    assert_eq!(svc.faults.dedup_replays(), 1);
    let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: sp }) else {
        panic!("balance");
    };
    assert_eq!(b, 2, "exactly one credit across crash, retry and replay");
    svc.shutdown();
}

#[test]
fn mid_batch_crash_between_verify_and_group_commit_converges() {
    // The batching pipeline's canonical torn window (DESIGN.md §16):
    // the shard dies *after* journaling a deposit's Commit but
    // *before* the batch's group commit and before any held reply in
    // that cross-client batch is released. Every client whose item
    // rode the doomed batch sees a hung-up connection; their retries
    // under the same keys must converge without losing or
    // double-applying a single item — committed items replay from the
    // rebuilt dedup cache, uncommitted ones re-execute.
    use ppms_core::service::MaClient;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    fn call_retry(client: &MaClient, id: u64, req: MaRequest, errors: &AtomicU64) -> MaResponse {
        for _ in 0..20 {
            match client.try_call_keyed(id, req.clone()) {
                Ok(resp) => return resp,
                Err(_) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        panic!("request never succeeded after the mid-batch crash");
    }

    let mut rng = StdRng::seed_from_u64(0x16C4);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards: 1,
            batch: BatchConfig {
                max_batch: 8,
                max_delay_micros: 2000,
            },
            // Setup journals 6 Begins (2 clients x SP + JO + Withdraw);
            // the crash fires on the Commit of the *second* deposit —
            // mid-batch whenever the concurrent depositors share a
            // drain.
            crash_mid_batch: Some(MidBatchCrash {
                shard: 0,
                at_begin: 8,
            }),
            ..ServiceConfig::default()
        },
    );

    // Two depositors, each with a coin and two unique leaves.
    let mut wallets = Vec::new();
    for _ in 0..2 {
        let client = svc.client();
        let MaResponse::Account(sp) = client.call(MaRequest::RegisterSpAccount) else {
            panic!("sp account");
        };
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!("jo account");
        };
        let mut coin = Coin::mint(&mut rng, &svc.params);
        let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
        let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 1,
            auth,
            blinded,
        }) else {
            panic!("withdraw");
        };
        assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));
        let spends: Vec<_> = (0..2)
            .map(|l| coin.spend(&mut rng, &svc.params, &NodePath::from_index(2, l), b""))
            .collect();
        wallets.push((sp, spends));
    }

    let errors = AtomicU64::new(0);
    let accounts: Vec<_> = wallets.iter().map(|(sp, _)| *sp).collect();
    let start = Arc::new(Barrier::new(wallets.len()));
    std::thread::scope(|scope| {
        for (sp, spends) in wallets {
            let svc = &svc;
            let errors = &errors;
            let start = start.clone();
            scope.spawn(move || {
                let client = svc.client();
                start.wait();
                for spend in spends {
                    let resp = call_retry(
                        &client,
                        next_request_id(),
                        MaRequest::DepositBatch {
                            account: sp,
                            spends: vec![spend],
                        },
                        errors,
                    );
                    let MaResponse::BatchDeposited {
                        accepted, rejected, ..
                    } = resp
                    else {
                        panic!("deposit reply: {resp:?}");
                    };
                    assert_eq!((accepted, rejected), (1, 0));
                }
            });
        }
    });

    // The crash must actually have fired and hung up at least one
    // in-flight client, and the supervisor must have respawned the
    // worker exactly once.
    assert_eq!(svc.faults.shard_respawns(), 1, "exactly one respawn");
    assert!(
        errors.load(Ordering::Relaxed) >= 1,
        "the doomed batch must have hung up at least one client"
    );
    // The crashed item's Commit predates the kill, so its retry is a
    // replay, never a re-execution.
    assert!(
        svc.faults.dedup_replays() >= 1,
        "the committed-but-unanswered item must replay from the rebuilt cache"
    );
    // Exactly-once: every unique leaf credited exactly one unit,
    // through crash, respawn, retries and replays.
    let client = svc.client();
    for sp in accounts {
        let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: sp }) else {
            panic!("balance");
        };
        assert_eq!(b, 2, "no lost and no double-applied deposits");
    }
    svc.shutdown();
}
