//! A fully threaded PPMSdec market over the message-passing MA
//! service: the JO and several SPs run as independent threads speaking
//! only through channels — the paper's Fig. 1 system model.

use ppms_core::service::{MaRequest, MaResponse, MaService};
use ppms_core::AccountId;
use ppms_crypto::cl::ClKeyPair;
use ppms_crypto::rsa;
use ppms_ecash::brk::{build_payment_with, NodeAllocator};
use ppms_ecash::{decode_payment, plan_break, CashBreak, Coin, DecParams, PaymentItem};
use ppms_integration::rng;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const RSA_BITS: usize = 512;

/// SP-side worker: register labor, submit data, poll for payment,
/// verify, deposit. Returns the credited amount.
fn sp_thread(svc: &MaService, job_id: u64, seed: u64) -> (AccountId, u64) {
    let client = svc.client();
    let mut rng = StdRng::seed_from_u64(seed);
    let one_time = rsa::keygen(&mut rng, RSA_BITS);
    let sp_pubkey = one_time.public.to_bytes();

    let MaResponse::Account(account) = client.call(MaRequest::RegisterSpAccount) else {
        panic!("account");
    };
    assert!(matches!(
        client.call(MaRequest::LaborRegister {
            job_id,
            sp_pubkey: sp_pubkey.clone()
        }),
        MaResponse::Ok
    ));
    assert!(matches!(
        client.call(MaRequest::SubmitData {
            job_id,
            sp_pubkey: sp_pubkey.clone(),
            data: format!("reading from sp {seed}").into_bytes(),
        }),
        MaResponse::Ok
    ));

    // Poll for the payment (the MA holds it until the JO submits it).
    let ciphertext = loop {
        match client.call(MaRequest::FetchPayment {
            sp_pubkey: sp_pubkey.clone(),
        }) {
            MaResponse::Payment(Some(ct)) => break ct,
            MaResponse::Payment(None) => std::thread::sleep(Duration::from_millis(5)),
            other => panic!("unexpected response {other:?}"),
        }
    };

    let payload = rsa::decrypt(&one_time, &ciphertext).expect("payment decrypts");
    let items = decode_payment(&payload).expect("bundle parses");
    let spends: Vec<_> = items
        .into_iter()
        .filter_map(|item| match item {
            PaymentItem::Real(spend) => spend
                .verify(&svc.params, &svc.bank_pk, b"")
                .ok()
                .map(|_| spend),
            PaymentItem::Fake(_) => None,
        })
        .collect();
    let n_spends = spends.len();
    let credited = match client.call(MaRequest::DepositBatch { account, spends }) {
        MaResponse::BatchDeposited {
            total,
            accepted,
            rejected,
        } => {
            assert_eq!(accepted, n_spends, "all real spends accepted");
            assert_eq!(rejected, 0);
            total
        }
        other => panic!("deposit failed: {other:?}"),
    };
    (account, credited)
}

#[test]
fn threaded_dec_market_full_protocol() {
    let mut seed_rng = rng(60);
    let params = DecParams::fixture(3, 10);
    let svc = MaService::spawn(&mut seed_rng, params.clone(), RSA_BITS, 40);
    let n_sps = 2;
    let w = 3u64;

    // --- JO thread ---
    let jo_handle = {
        let client = svc.client();
        let params = svc.params.clone();
        let bank_pk = svc.bank_pk.clone();
        let pairing = svc.pairing.clone();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(61);
            let cl = ClKeyPair::generate(&mut rng, &pairing);
            let MaResponse::Account(account) = client.call(MaRequest::RegisterJoAccount {
                funds: 100,
                clpk: cl.public.clone(),
            }) else {
                panic!("jo account");
            };
            let job_key = rsa::keygen(&mut rng, RSA_BITS);
            let MaResponse::JobId(job_id) = client.call(MaRequest::PublishJob {
                description: "threaded sensing job".into(),
                payment: w,
                pseudonym: job_key.public.to_bytes(),
            }) else {
                panic!("publish");
            };

            // Withdraw a coin.
            let mut coin = Coin::mint(&mut rng, &params);
            let (blinded, factor) = coin.blind_token(&mut rng, &bank_pk);
            let auth = cl.sign_bytes(&mut rng, &pairing, &1u64.to_be_bytes());
            let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
                account,
                nonce: 1,
                auth,
                blinded,
            }) else {
                panic!("withdraw");
            };
            assert!(coin.attach_signature(&bank_pk, &sig, &factor));
            let mut allocator = NodeAllocator::new(params.levels);

            // Wait for labor registrations, then pay each SP.
            let mut paid = 0usize;
            while paid < n_sps {
                let MaResponse::Labor(sps) = client.call(MaRequest::FetchLabor { job_id }) else {
                    panic!("labor");
                };
                for sp_pubkey in sps.into_iter().skip(paid) {
                    let plan = plan_break(CashBreak::Pcba, w, params.levels).unwrap();
                    let items = build_payment_with(
                        &mut rng,
                        &params,
                        &coin,
                        &plan,
                        b"",
                        bank_pk.size_bytes(),
                        &mut allocator,
                    )
                    .unwrap();
                    // The SP worker in this test verifies coins directly, so
                    // the encrypted payload is the bare bundle (DecMarket's
                    // driver additionally appends the designation signature).
                    let payload = ppms_ecash::encode_payment(&items);
                    let sp_pk = rsa::RsaPublicKey::from_bytes(&sp_pubkey).unwrap();
                    let ciphertext = rsa::encrypt(&mut rng, &sp_pk, &payload);
                    assert!(matches!(
                        client.call(MaRequest::SubmitPayment {
                            sp_pubkey,
                            ciphertext
                        }),
                        MaResponse::Ok
                    ));
                    paid += 1;
                }
                if paid < n_sps {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }

            // Collect the data reports.
            let mut reports = Vec::new();
            while reports.len() < n_sps {
                let MaResponse::Data(batch) = client.call(MaRequest::FetchData { job_id }) else {
                    panic!("data");
                };
                reports.extend(batch);
                if reports.len() < n_sps {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            (account, job_id, reports.len())
        })
    };

    // --- SP threads (started after the job exists) ---
    // Wait for the bulletin to carry the job.
    while svc.bulletin.is_empty() {
        std::thread::sleep(Duration::from_millis(2));
    }
    let job_id = svc.bulletin.list()[0].job_id;
    // Run SPs on scoped threads so they can borrow the service.
    let results: Vec<(AccountId, u64)> = std::thread::scope(|s| {
        (0..n_sps)
            .map(|i| {
                s.spawn({
                    let svc = &svc;
                    move || sp_thread(svc, job_id, 70 + i as u64)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("sp thread"))
            .collect()
    });

    let (jo_account, _job, n_reports) = jo_handle.join().expect("jo thread");
    assert_eq!(n_reports, n_sps);

    // Every SP got paid w.
    let client = svc.client();
    for (account, credited) in &results {
        assert_eq!(*credited, w, "sp credited");
        let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: *account }) else {
            panic!("balance");
        };
        assert_eq!(b, w);
    }
    // JO paid 2^L once.
    let MaResponse::Balance(jo_balance) = client.call(MaRequest::Balance {
        account: jo_account,
    }) else {
        panic!("balance");
    };
    assert_eq!(jo_balance, 100 - svc.params.face_value());

    svc.shutdown();
}
