//! Double-spend and abuse scenarios across the market + e-cash stack.

use ppms_core::MarketError;
use ppms_ecash::{CashBreak, DecError, NodePath};
use ppms_integration::{dec_market, TEST_RSA_BITS};

#[test]
fn jo_paying_two_sps_with_same_nodes_caught_at_second_deposit() {
    // A malicious JO encrypts the SAME spends to two SPs. The first
    // deposit wins; the second SP's deposits bounce.
    let (mut market, mut rng) = dec_market(20, 3);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp1 = market.register_sp(&mut rng, TEST_RSA_BITS);
    let sp2 = market.register_sp(&mut rng, TEST_RSA_BITS);

    market.register_job(&jo, "double pay", 5);
    market.withdraw(&mut rng, &mut jo).unwrap();
    let params = market.params().clone();

    // Craft the duplicate payment manually at the e-cash layer.
    let coin = market_coin(&mut market, &mut rng, &mut jo);
    let spend = coin.spend(&mut rng, &params, &NodePath::from_index(2, 1), b"");

    assert_eq!(market.dec_bank.deposit(&spend, b""), Ok(2));
    assert_eq!(
        market.dec_bank.deposit(&spend, b""),
        Err(DecError::DoubleSpend("node already spent".into()))
    );

    let _ = (sp1, sp2);
}

#[test]
fn sp_cannot_replay_payment_after_depositing() {
    let (mut market, mut rng) = dec_market(21, 3);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);

    market.register_job(&jo, "job", 5);
    market.withdraw(&mut rng, &mut jo).unwrap();
    let jo_pk = jo.job_key_public();
    let sp_pk = market.labor_registration(&sp);
    let (ct, ..) = market
        .submit_payment(&mut rng, &mut jo, &sp_pk, 5, CashBreak::Pcba)
        .unwrap();

    let (credited, _) = market.deposit_payment(&sp, &jo_pk, &ct).unwrap();
    assert_eq!(credited, 5);
    // Replaying the same ciphertext re-deposits the same serials.
    let err = market.deposit_payment(&sp, &jo_pk, &ct).unwrap_err();
    assert!(
        matches!(err, MarketError::Dec(DecError::DoubleSpend(_))),
        "got {err:?}"
    );
}

#[test]
fn overlapping_payments_from_one_coin_rejected() {
    // The JO tries to pay two SPs with overlapping tree regions by
    // bypassing the leaf accounting (crafting spends directly).
    let (mut market, mut rng) = dec_market(22, 3);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    market.register_job(&jo, "overlap", 4);
    market.withdraw(&mut rng, &mut jo).unwrap();
    let params = market.params().clone();
    let coin = market_coin(&mut market, &mut rng, &mut jo);

    // Spend the depth-1 left node, then one of its leaves.
    let parent = coin.spend(&mut rng, &params, &NodePath::from_index(1, 0), b"");
    let leaf = coin.spend(&mut rng, &params, &NodePath::from_index(3, 2), b"");
    assert!(market.dec_bank.deposit(&parent, b"").is_ok());
    assert_eq!(
        market.dec_bank.deposit(&leaf, b""),
        Err(DecError::DoubleSpend(
            "an ancestor was already spent".into()
        ))
    );
}

#[test]
fn fake_coins_never_credit() {
    let (mut market, mut rng) = dec_market(23, 3);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);

    let outcome = market
        .run_round(
            &mut rng,
            &mut jo,
            &sp,
            "padded",
            1,
            CashBreak::Unitary,
            b"d",
        )
        .unwrap();
    // w = 1, face = 8: one real coin, seven fakes — exactly 1 credited.
    assert_eq!(outcome.real_coins, 1);
    assert_eq!(outcome.fake_coins, 7);
    assert_eq!(outcome.credited, 1);
    assert_eq!(market.bank.balance(sp.account).unwrap(), 1);
}

#[test]
fn tampered_ciphertext_rejected_by_sp() {
    let (mut market, mut rng) = dec_market(24, 2);
    let mut jo = market.register_jo(&mut rng, 100, TEST_RSA_BITS);
    let sp = market.register_sp(&mut rng, TEST_RSA_BITS);
    market.register_job(&jo, "job", 2);
    market.withdraw(&mut rng, &mut jo).unwrap();
    let jo_pk = jo.job_key_public();
    let sp_pk = market.labor_registration(&sp);
    let (mut ct, ..) = market
        .submit_payment(&mut rng, &mut jo, &sp_pk, 2, CashBreak::Pcba)
        .unwrap();
    ct[10] ^= 0x80;
    let err = market.deposit_payment(&sp, &jo_pk, &ct).unwrap_err();
    assert_eq!(err, MarketError::BadPayload("decrypt".into()));
}

/// Extracts the JO's coin for crafting adversarial spends (test-only
/// access path: we re-run withdrawal through the bank directly).
fn market_coin(
    market: &mut ppms_core::ppmsdec::DecMarket,
    rng: &mut rand::rngs::StdRng,
    _jo: &mut ppms_core::ppmsdec::DecJobOwner,
) -> ppms_ecash::Coin {
    market.dec_bank.withdraw_coin(rng)
}
