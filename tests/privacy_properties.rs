//! Privacy properties of the two mechanisms (paper §IV-B and §V-B),
//! checked mechanically where the implementation makes them concrete:
//! what the MA's observable state contains, what the JO's view
//! contains, and how the cash-break strategies shrink the
//! denomination-attack success rate.

use ppms_core::attack::{achievable_sums, deposit_stream, run_denomination_attack};
use ppms_core::ppmspbs::PbsMarket;
use ppms_core::{Op, Party};
use ppms_ecash::CashBreak;
use ppms_integration::{dec_market, rng, TEST_RSA_BITS};

#[test]
fn dec_coin_unlinkable_to_withdrawal() {
    // The bank signs a BLINDED token at withdrawal; the root tag it
    // later sees at deposit is a fresh value the bank never observed.
    let (mut market, mut r) = dec_market(30, 2);
    let mut jo = market.register_jo(&mut r, 100, TEST_RSA_BITS);
    market.register_job(&jo, "job", 2);

    // Capture what the bank sees at withdrawal: only the blinded token.
    market.withdraw(&mut r, &mut jo).unwrap();
    let withdrawal_msgs: Vec<_> = market
        .traffic
        .snapshot()
        .into_iter()
        .filter(|e| e.label == "withdrawal-request")
        .collect();
    assert_eq!(withdrawal_msgs.len(), 1);
    // Blindness is proven at the crypto layer (rsa::blind tests show
    // the signer's view is independent of the token); here we assert
    // the protocol actually routes through the blind path: the traffic
    // entry exists and no plaintext coin-token message was ever sent.
    assert!(!market.traffic.has_label("coin-token-plaintext"));
}

#[test]
fn pbs_jo_never_sees_sp_account_key() {
    // Transaction-linkage privacy against the JO: the JO signs a
    // blinded value; the SP's account key reaches the MA only at
    // deposit. We verify the JO-side inputs differ from the SP key.
    let mut r = rng(31);
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut r, 10, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);

    let msg = sp.account_key.public.to_bytes();
    let (alpha, _b) = ppms_crypto::rsa::pbs_blind(&mut r, &jo.account_key.public, &sp.serial, &msg);
    // The blinded value is not the message (and is uniformly re-randomized).
    assert_ne!(alpha.to_bytes_be(), msg);
    let (alpha2, _b2) =
        ppms_crypto::rsa::pbs_blind(&mut r, &jo.account_key.public, &sp.serial, &msg);
    assert_ne!(alpha, alpha2, "same key blinds to fresh values every time");
}

#[test]
fn pbs_ma_sees_transaction_but_not_job_identity() {
    // The paper's deliberate asymmetry: the MA learns (JO account, SP
    // account) at deposit, but jobs are published under pseudonyms.
    let mut r = rng(32);
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut r, 10, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);
    market
        .run_round(&mut r, &jo, &sp, "hiv cohort study", b"vitals")
        .unwrap();

    // The bulletin board never contains the JO's account key.
    let account_key_bytes = jo.account_key.public.to_bytes();
    for job in market.bulletin.list() {
        assert_ne!(
            job.pseudonym, account_key_bytes,
            "job published under pseudonym only"
        );
    }
    // The ledger moved money between the two accounts (bank-visible).
    assert_eq!(market.bank.balance(sp.account).unwrap(), 1);
}

#[test]
fn denomination_attack_baseline_vs_breaks() {
    // §IV-B quantified: breaking the payment inflates the candidate
    // set from ~1 to many.
    let none = run_denomination_attack(100, CashBreak::None, 10, 8, 300);
    let pcba = run_denomination_attack(100, CashBreak::Pcba, 10, 8, 300);
    let epcba = run_denomination_attack(100, CashBreak::Epcba, 10, 8, 300);
    let unitary = run_denomination_attack(100, CashBreak::Unitary, 10, 8, 300);

    assert!(
        none.unique_success_rate > 0.9,
        "unbroken payments are linkable"
    );
    assert!(pcba.mean_candidate_jobs > none.mean_candidate_jobs);
    assert!(epcba.mean_candidate_jobs >= pcba.mean_candidate_jobs * 0.9);
    assert!(unitary.unique_success_rate < none.unique_success_rate);
    assert!(unitary.mean_candidate_jobs > 2.0);
}

#[test]
fn epcba_candidate_sums_superset_of_pcba_for_powers_of_two() {
    // The paper's motivation for EPCBA: for w = 2^k PCBA yields ONE
    // coin (fully linkable); EPCBA yields k+1 coins.
    for k in 1..=6u32 {
        let w = 1u64 << k;
        let p = achievable_sums(&deposit_stream(CashBreak::Pcba, w, 8), 8);
        let e = achievable_sums(&deposit_stream(CashBreak::Epcba, w, 8), 8);
        assert_eq!(p.len(), 1, "PCBA of 2^{k} is a single coin");
        assert!(e.len() > p.len(), "EPCBA of 2^{k} covers more sums");
        assert!(e.contains(&w));
    }
}

#[test]
fn sp_identity_appears_only_at_deposit_in_dec() {
    // Job-linkage privacy: labor registration uses the one-time key;
    // the account id appears only on deposit messages.
    let (mut market, mut r) = dec_market(33, 3);
    let mut jo = market.register_jo(&mut r, 100, TEST_RSA_BITS);
    let sp = market.register_sp(&mut r, TEST_RSA_BITS);
    market
        .run_round(&mut r, &mut jo, &sp, "job", 3, CashBreak::Epcba, b"d")
        .unwrap();

    // The one-time pseudonym is never identical to account identity:
    // the protocol keys the deposit stream by AID, the registration by
    // rpk_sp; both exist, and nothing ties them in the MA's log.
    assert!(market.traffic.has_label("labor-registration"));
    assert!(market.traffic.has_label("deposit"));
    // The metrics side-channel: deposits happened strictly after
    // payment delivery in the log (ordering preserved).
    let log = market.traffic.snapshot();
    let delivery_idx = log
        .iter()
        .position(|e| e.label == "payment-delivery")
        .unwrap();
    let first_deposit = log.iter().position(|e| e.label == "deposit").unwrap();
    assert!(first_deposit > delivery_idx, "deposits follow delivery");
}

#[test]
fn labor_registrations_mix_before_the_ma() {
    // §III-B assumption realized: a batch of labor registrations is
    // onion-routed through a 2-hop mix cascade; the MA receives the
    // full multiset of one-time keys but in an order decorrelated from
    // the senders.
    use ppms_core::MixCascade;
    let mut r = rng(36);
    let cascade = MixCascade::new(&mut r, 2, 512);
    let registrations: Vec<Vec<u8>> = (0..6u8)
        .map(|i| {
            // Each "SP" registers a distinct one-time key blob.
            vec![i; 32]
        })
        .collect();
    let onions: Vec<Vec<u8>> = registrations
        .iter()
        .map(|m| cascade.build_onion(&mut r, m))
        .collect();
    let delivered = cascade.run_batch(&mut r, &onions).expect("mix delivers");
    let mut got = delivered.clone();
    let mut want = registrations.clone();
    got.sort();
    want.sort();
    assert_eq!(got, want, "the MA gets every registration exactly once");
}

#[test]
fn table1_shape_pbs_lighter_than_dec() {
    // Fig. 5 / Table I in miniature: a PPMSpbs round does strictly
    // fewer heavyweight ops than a PPMSdec round.
    let (mut dec, mut r1) = dec_market(34, 3);
    let mut jo = dec.register_jo(&mut r1, 100, TEST_RSA_BITS);
    let sp = dec.register_sp(&mut r1, TEST_RSA_BITS);
    dec.run_round(&mut r1, &mut jo, &sp, "job", 5, CashBreak::Pcba, b"d")
        .unwrap();

    let mut r2 = rng(35);
    let mut pbs = PbsMarket::new();
    let pjo = pbs.register_jo(&mut r2, 10, TEST_RSA_BITS);
    let psp = pbs.register_sp(&mut r2, TEST_RSA_BITS);
    pbs.run_round(&mut r2, &pjo, &psp, "job", b"d").unwrap();

    let dec_zkp: u64 = [Party::Jo, Party::Sp, Party::Ma]
        .iter()
        .map(|&p| dec.metrics.get(p, Op::Zkp))
        .sum();
    let pbs_zkp: u64 = [Party::Jo, Party::Sp, Party::Ma]
        .iter()
        .map(|&p| pbs.metrics.get(p, Op::Zkp))
        .sum();
    assert!(dec_zkp > 0);
    assert_eq!(pbs_zkp, 0);
    // Table II shape: PPMSdec moves more bytes than PPMSpbs.
    assert!(
        dec.traffic.total_bytes() > pbs.traffic.total_bytes(),
        "dec {} <= pbs {}",
        dec.traffic.total_bytes(),
        pbs.traffic.total_bytes()
    );
}
