//! Scrape the live ops plane on the TCP front door.
//!
//! `Ops` requests are admission-exempt, read-only, and served inside
//! the reactor thread — they never pay the gate and never touch a
//! shard, so they work even when the market itself is overloaded or
//! the caller holds no e-cash. This example spins up a market, pushes
//! a little traffic through the door, then scrapes every ops surface:
//! the health probe, the merged metrics snapshot as JSON and as
//! Prometheus text, and the slow-request log with its span trees.
//!
//! ```text
//! cargo run --release --example ops_scrape
//! ```

use ppms_core::gate::{AdmissionConfig, OpsRequest};
use ppms_core::service::{MaClient, MaRequest, MaResponse, MaService, ServiceConfig};
use ppms_core::{Party, TcpClientConfig, TcpConfig, TcpFrontDoor, TcpTransport};
use ppms_ecash::DecParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x0B5);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        },
    );
    // Free admission keeps the example focused on the ops plane; a
    // 1ns slow threshold makes every request "slow" so the log fills.
    let door = TcpFrontDoor::spawn(
        &svc,
        "127.0.0.1:0",
        TcpConfig {
            admission: AdmissionConfig {
                price: 0,
                requests_per_token: u64::MAX,
                ..AdmissionConfig::default()
            },
            slow_request_threshold: Duration::from_nanos(1),
            slow_log_capacity: 8,
            ..TcpConfig::default()
        },
    )
    .expect("front door must bind loopback");
    println!("front door listening on {}", door.addr());

    // A little app traffic so the scrape has something to show.
    let transport = Arc::new(TcpTransport::new(TcpClientConfig::new(door.addr())));
    let client = MaClient::new(transport.clone(), Party::Sp);
    for _ in 0..4 {
        let resp = client
            .try_call(MaRequest::RegisterSpAccount)
            .expect("register");
        assert!(matches!(resp, MaResponse::Account(_)));
    }

    // The scrape itself: four ops queries over the same socket. No
    // admission, no shard, no ledger access — pure reactor-side reads.
    let health = transport
        .ops(OpsRequest::Health)
        .expect("health probe answers");
    println!("\n== GET health ==\n{health}");

    let json = transport
        .ops(OpsRequest::MetricsJson)
        .expect("metrics snapshot answers");
    println!("\n== GET metrics (JSON, first 400 bytes) ==");
    println!("{}", &json[..json.len().min(400)]);

    let text = transport
        .ops(OpsRequest::MetricsText)
        .expect("prometheus text answers");
    println!("\n== GET metrics (Prometheus text, tcp.* family) ==");
    for line in text.lines().filter(|l| l.contains("tcp_")) {
        println!("{line}");
    }

    let slow = transport
        .ops(OpsRequest::SlowLog)
        .expect("slow log answers");
    let entries = slow.matches("\"elapsed_ns\"").count();
    println!("\n== GET slow log ({entries} entries, first 400 bytes) ==");
    println!("{}", &slow[..slow.len().min(400)]);

    assert!(health.contains("status"), "health reports a status");
    assert!(json.contains("tcp."), "snapshot covers the door");
    assert!(entries >= 1, "the 1ns threshold catches every request");

    drop(door);
    svc.shutdown();
    println!("\nops plane scraped: health, metrics x2, slow log.");
}
