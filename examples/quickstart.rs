//! Quickstart: one complete payment round in each mechanism.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppms_core::ppmsdec::DecMarket;
use ppms_core::ppmspbs::PbsMarket;
use ppms_ecash::{CashBreak, DecParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xFEED);

    // ---------------------------------------------------------------
    // PPMSpbs: the light-weight unitary-payment market.
    // ---------------------------------------------------------------
    println!("== PPMSpbs (unitary payments) ==");
    let mut pbs = PbsMarket::new();
    let jo = pbs.register_jo(&mut rng, 10, 512);
    let sp = pbs.register_sp(&mut rng, 512);
    let outcome = pbs
        .run_round(
            &mut rng,
            &jo,
            &sp,
            "city noise samples",
            b"58 dB(A) @ Main St",
        )
        .expect("PPMSpbs round");
    println!(
        "job #{} paid {} credit(s)",
        outcome.job_id, outcome.credited
    );
    println!(
        "balances: JO = {}, SP = {}",
        pbs.bank.balance(jo.account).unwrap(),
        pbs.bank.balance(sp.account).unwrap()
    );
    println!(
        "traffic: {:.2} kb over {} messages",
        pbs.traffic.total_kb(),
        pbs.traffic.message_count()
    );

    // ---------------------------------------------------------------
    // PPMSdec: arbitrary payments over divisible e-cash.
    // ---------------------------------------------------------------
    println!("\n== PPMSdec (arbitrary payments, L = 3) ==");
    let params = DecParams::fixture(3, 16);
    let mut dec = DecMarket::new(&mut rng, params, 512, 48);
    let mut jo = dec.register_jo(&mut rng, 100, 512);
    let sp = dec.register_sp(&mut rng, 512);
    let outcome = dec
        .run_round(
            &mut rng,
            &mut jo,
            &sp,
            "accelerometer study",
            5,
            CashBreak::Epcba,
            b"fall trace",
        )
        .expect("PPMSdec round");
    println!(
        "job #{}: paid w = {} with {} real coin(s) + {} fake(s); deposits seen by MA: {:?}",
        outcome.job_id,
        outcome.credited,
        outcome.real_coins,
        outcome.fake_coins,
        outcome.deposit_stream
    );
    println!(
        "balances: JO = {} (+{} change in the coin), SP = {}",
        dec.bank.balance(jo.account).unwrap(),
        jo.change_value(dec.params()),
        dec.bank.balance(sp.account).unwrap()
    );
    println!(
        "traffic: {:.2} kb over {} messages",
        dec.traffic.total_kb(),
        dec.traffic.message_count()
    );
    println!("\nTable-I style op counts (this round):");
    for p in [
        ppms_core::Party::Jo,
        ppms_core::Party::Sp,
        ppms_core::Party::Ma,
    ] {
        println!("  {p}: {}", dec.metrics.formula(p));
    }
}
