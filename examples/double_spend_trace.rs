//! Double-spender identity tracing — the offline-e-cash feature of the
//! divisible-cash schemes the paper builds on (refs [22][23]): a
//! single spend is anonymous, but spending the *same* tree node twice
//! lets the bank algebraically recover the cheater's registered
//! identity commitment.
//!
//! ```text
//! cargo run --release --example double_spend_trace
//! ```

use ppms_ecash::{
    trace_double_spender, trace_tag, verify_tag, Coin, DecParams, NodePath, TraceKey,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x7A7CE);
    let params = DecParams::fixture(4, 12);

    // Two wallets register identity commitments with the bank.
    let honest_key = TraceKey::generate(&mut rng, &params);
    let cheater_key = TraceKey::generate(&mut rng, &params);
    let registry = [
        ("honest-alice", honest_key.commitment.clone()),
        ("cheating-bob", cheater_key.commitment.clone()),
    ];

    let honest_coin = Coin::mint(&mut rng, &params);
    let cheater_coin = Coin::mint(&mut rng, &params);

    println!("== One spend reveals nothing ==");
    let node = NodePath::from_index(3, 5);
    let t1 = trace_tag(&params, &honest_coin, &honest_key, &node, b"merchant-1");
    println!(
        "honest spend tag verifies against alice's commitment: {}",
        verify_tag(&params, &honest_key.commitment, &t1)
    );
    println!("(a single (c, r) pair is one equation in two unknowns — perfectly hiding)\n");

    println!("== Two spends of the same node expose the identity ==");
    let s1 = trace_tag(&params, &cheater_coin, &cheater_key, &node, b"merchant-1");
    let s2 = trace_tag(&params, &cheater_coin, &cheater_key, &node, b"merchant-2");
    let recovered = trace_double_spender(&params, &s1, &s2).expect("double spend is traceable");
    let culprit = registry
        .iter()
        .find(|(_, c)| *c == recovered)
        .map(|(name, _)| *name)
        .unwrap_or("<unknown>");
    println!("bank combined the two trace tags and recovered: {culprit}");
    assert_eq!(culprit, "cheating-bob");

    println!("\n== No false accusations ==");
    let d1 = trace_tag(
        &params,
        &cheater_coin,
        &cheater_key,
        &NodePath::from_index(3, 1),
        b"m1",
    );
    let d2 = trace_tag(
        &params,
        &cheater_coin,
        &cheater_key,
        &NodePath::from_index(3, 2),
        b"m2",
    );
    println!(
        "tags from two *different* nodes combine to: {:?}",
        trace_double_spender(&params, &d1, &d2)
            .map(|_| "identity")
            .unwrap_or("nothing")
    );
}
