//! The paper's motivating scenario (§I): a research organization
//! collects daily physical status from HIV patients. Participation
//! itself is sensitive — knowing that a person took this job reveals
//! their diagnosis — so the whole round must keep the SP's account
//! identity unlinkable from the job.
//!
//! This example runs the study as a PPMSdec market with EPCBA cash
//! breaking, then shows what each party actually observed.
//!
//! ```text
//! cargo run --release --example hiv_study
//! ```

use ppms_core::ppmsdec::DecMarket;
use ppms_ecash::{CashBreak, DecParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x41D5);
    let params = DecParams::fixture(4, 16); // payments up to 2^4 = 16 credits
    let mut market = DecMarket::new(&mut rng, params, 512, 48);

    // The research organization funds its market account.
    let mut org = market.register_jo(&mut rng, 200, 512);

    // Three patients participate; each uses a one-time key for the job
    // and its real account only at deposit time.
    println!("== HIV daily-status study (PPMSdec, w = 9, EPCBA) ==\n");
    let mut patient_accounts = Vec::new();
    for day in 0..3 {
        let patient = market.register_sp(&mut rng, 512);
        let outcome = market
            .run_round(
                &mut rng,
                &mut org,
                &patient,
                "daily physical status (cohort H)",
                9,
                CashBreak::Epcba,
                format!("day {day}: hr=72 spo2=97 steps=4211").as_bytes(),
            )
            .expect("round");
        println!(
            "patient {day}: paid {} credits via {} coins (+{} fakes); MA saw deposits {:?}",
            outcome.credited, outcome.real_coins, outcome.fake_coins, outcome.deposit_stream
        );
        patient_accounts.push(patient.account);
    }

    println!("\nWhat the market administrator can see:");
    println!(
        "  - bulletin board: {:?}",
        market
            .bulletin
            .list()
            .iter()
            .map(|j| (j.job_id, j.payment))
            .collect::<Vec<_>>()
    );
    println!("  - deposit streams per anonymous account (values only)");
    println!("  - NO linkage between a deposit account and the study:");
    println!("    the coins were blind-signed, the deposits are broken");
    println!("    into generic denominations, and labor registration");
    println!("    used one-time keys.\n");

    for (i, acct) in patient_accounts.iter().enumerate() {
        println!(
            "patient {i} balance: {} credits",
            market.bank.balance(*acct).unwrap()
        );
    }
    println!(
        "study account balance: {} credits ({} still held as coin change)",
        market.bank.balance(org.account).unwrap(),
        org.change_value(market.params())
    );
}
