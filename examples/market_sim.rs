//! A threaded many-party market: several (JO, SP) pairs trade
//! concurrently against one shared PPMSpbs market, exercising the
//! ledger, the serial-freshness table and the metrics under real
//! contention. Finishes with a Fig.-5-style timing comparison of the
//! two mechanisms.
//!
//! ```text
//! cargo run --release --example market_sim
//! ```

use ppms_core::sim::{run_dec_rounds, run_parallel_pbs_market, run_pbs_rounds};
use ppms_ecash::CashBreak;

fn main() {
    println!("== Threaded PPMSpbs market ==");
    let report = run_parallel_pbs_market(0x5EED, 6, 4, 512, 4).expect("parallel market");
    println!(
        "{} rounds completed, {} failed, in {:?} across 4 workers",
        report.completed, report.failed, report.elapsed
    );
    println!(
        "ledger conserved: {} -> {} credits",
        report.supply_before, report.supply_after
    );
    assert_eq!(report.supply_before, report.supply_after);

    println!("\n== Fig.5-style multi-round timing (setup included) ==");
    println!("{:>7} {:>16} {:>16}", "rounds", "PPMSdec", "PPMSpbs");
    for rounds in [1usize, 3, 5] {
        let (dec, _) =
            run_dec_rounds(1, rounds, 3, 16, 512, 48, 5, CashBreak::Pcba).expect("dec rounds");
        let pbs = run_pbs_rounds(2, rounds, 512).expect("pbs rounds");
        println!("{rounds:>7} {:>14.1?} {:>14.1?}", dec.total(), pbs.total());
    }
    println!("\nPPMSpbs's flat, low cost versus PPMSdec's ZKP-heavy rounds");
    println!("reproduces the gap the paper reports in Fig. 5.");
}
