//! A complete PPMSdec market round over real loopback TCP: the market
//! administrator runs behind the hand-rolled non-blocking front door,
//! and both parties must buy their way in through the e-cash
//! admission gate before a single request reaches a shard. The JO
//! withdraws a coin, hires an SP, pays via PCBA cash breaking; the SP
//! reports data, collects the payment and deposits it — every message
//! a length-prefixed wire frame on a real socket.
//!
//! ```text
//! cargo run --release --example tcp_market
//! ```

use ppms_core::service::{MaClient, MaRequest, MaResponse, MaService, ServiceConfig};
use ppms_core::sim::{mint_admission_spends, verify_bundle_sequential};
use ppms_core::{Party, TcpClientConfig, TcpConfig, TcpFrontDoor, TcpTransport};
use ppms_crypto::cl::ClKeyPair;
use ppms_crypto::rsa;
use ppms_ecash::brk::{build_payment_with, NodeAllocator};
use ppms_ecash::{decode_payment, encode_payment, plan_break, CashBreak, Coin, DecParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const RSA_BITS: usize = 512;
const W: u64 = 5;

fn expect(what: &str, got: Result<MaResponse, ppms_core::MarketError>) -> MaResponse {
    got.unwrap_or_else(|e| panic!("{what} failed: {e:?}"))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x7C9);
    let params = DecParams::fixture(3, 8);

    println!("== Spawning the MA service and its TCP front door ==");
    let svc = MaService::spawn_with_config(
        &mut rng,
        params.clone(),
        RSA_BITS,
        40,
        ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        },
    );
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", TcpConfig::default())
        .expect("front door must bind loopback");
    let admission = TcpConfig::default().admission;
    println!(
        "front door listening on {} (admission price {}, {} requests/token)",
        door.addr(),
        admission.price,
        admission.requests_per_token
    );

    // Both parties need wallets of unit spends to pay the gate.
    let mut wallet = mint_admission_spends(&svc, 0x7C9, 4).expect("admission wallet");
    let sp_wallet = wallet.split_off(2);
    let jo_transport = TcpTransport::new(TcpClientConfig::new(door.addr()));
    jo_transport.load_wallet(wallet);
    let sp_transport = TcpTransport::new(TcpClientConfig::new(door.addr()));
    sp_transport.load_wallet(sp_wallet);
    let jo = MaClient::new(Arc::new(jo_transport), Party::Jo);
    let sp = MaClient::new(Arc::new(sp_transport), Party::Sp);

    println!("\n== JO: register, publish the sensing job ==");
    let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
    let MaResponse::Account(jo_account) = expect(
        "jo account",
        jo.try_call(MaRequest::RegisterJoAccount {
            funds: 2 * params.face_value(),
            clpk: cl.public.clone(),
        }),
    ) else {
        panic!("jo account: wrong response shape");
    };
    let job_key = rsa::keygen(&mut rng, RSA_BITS);
    let MaResponse::JobId(job_id) = expect(
        "publish",
        jo.try_call(MaRequest::PublishJob {
            description: "air-quality readings, downtown".into(),
            payment: W,
            pseudonym: job_key.public.to_bytes(),
        }),
    ) else {
        panic!("publish: wrong response shape");
    };
    println!("job {job_id} published, paying {W} credits");

    println!("\n== SP: register labor under a one-time pseudonym ==");
    let MaResponse::Account(sp_account) =
        expect("sp account", sp.try_call(MaRequest::RegisterSpAccount))
    else {
        panic!("sp account: wrong response shape");
    };
    let one_time = rsa::keygen(&mut rng, RSA_BITS);
    let sp_pubkey = one_time.public.to_bytes();
    expect(
        "labor register",
        sp.try_call(MaRequest::LaborRegister {
            job_id,
            sp_pubkey: sp_pubkey.clone(),
        }),
    );

    println!("\n== JO: withdraw a coin, break {W} credits, pay the SP ==");
    let MaResponse::Labor(keys) =
        expect("labor fetch", jo.try_call(MaRequest::FetchLabor { job_id }))
    else {
        panic!("labor fetch: wrong response shape");
    };
    let receiver = keys.last().cloned().expect("labor visible");
    let mut coin = Coin::mint(&mut rng, &params);
    let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
    let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
    let MaResponse::BlindSignature(sig) = expect(
        "withdraw",
        jo.try_call(MaRequest::Withdraw {
            account: jo_account,
            nonce: 1,
            auth,
            blinded,
        }),
    ) else {
        panic!("withdraw: wrong response shape");
    };
    assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));
    let plan = plan_break(CashBreak::Pcba, W, params.levels).expect("break plan");
    let mut allocator = NodeAllocator::new(params.levels);
    let items = build_payment_with(
        &mut rng,
        &params,
        &coin,
        &plan,
        b"",
        svc.bank_pk.size_bytes(),
        &mut allocator,
    )
    .expect("payment bundle");
    let sp_pk = rsa::RsaPublicKey::from_bytes(&receiver).expect("labor key parses");
    let ciphertext = rsa::encrypt(&mut rng, &sp_pk, &encode_payment(&items));
    expect(
        "payment submission",
        jo.try_call(MaRequest::SubmitPayment {
            sp_pubkey: sp_pubkey.clone(),
            ciphertext,
        }),
    );

    println!("\n== SP: report data, collect and deposit the payment ==");
    expect(
        "data report",
        sp.try_call(MaRequest::SubmitData {
            job_id,
            sp_pubkey: sp_pubkey.clone(),
            data: b"pm2.5=12ug/m3".to_vec(),
        }),
    );
    let MaResponse::Payment(Some(ct)) = expect(
        "payment fetch",
        sp.try_call(MaRequest::FetchPayment { sp_pubkey }),
    ) else {
        panic!("payment withheld despite data report");
    };
    let payload = rsa::decrypt(&one_time, &ct).expect("payment decrypts");
    let items = decode_payment(&payload).expect("payment parses");
    let (spends, value) = verify_bundle_sequential(&params, &svc.bank_pk, &items, b"");
    println!(
        "payment bundle verified: {value} credits in {} spends",
        spends.len()
    );
    let MaResponse::BatchDeposited { total, .. } = expect(
        "deposit",
        sp.try_call(MaRequest::DepositBatch {
            account: sp_account,
            spends,
        }),
    ) else {
        panic!("deposit: wrong response shape");
    };
    assert_eq!(total, W);

    let MaResponse::Balance(balance) = expect(
        "balance",
        sp.try_call(MaRequest::Balance {
            account: sp_account,
        }),
    ) else {
        panic!("balance: wrong response shape");
    };
    println!("SP balance after deposit: {balance} credits");
    assert_eq!(balance, W);

    println!("\n== Front-door accounting ==");
    let snap = door.obs_snapshot();
    println!(
        "connections accepted {}, admissions {} (challenges {}), shed {}, evicted {}",
        snap.counter("tcp.accepted"),
        snap.counter("gate.admitted"),
        snap.counter("gate.challenges"),
        snap.counter("tcp.shed"),
        snap.counter("tcp.evicted"),
    );
    if let Some(h) = snap.histogram("tcp.request_ns") {
        println!(
            "request latency through the socket: p50 {}ns p99 {}ns over {} requests",
            h.p50(),
            h.p99(),
            h.count
        );
    }
    println!(
        "wire traffic: {} frames, {:.1} KiB total",
        svc.traffic.message_count(),
        svc.traffic.total_kb()
    );

    drop(door);
    svc.shutdown();
    println!("\nmarket round complete: every message crossed a real socket,");
    println!("and every connection paid the gate in the market's own e-cash.");
}
