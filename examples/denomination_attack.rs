//! The denomination attack (paper §IV-B) in action: a curious market
//! administrator tries to link sensing participants to jobs purely
//! from public payments and observed deposit streams — and the cash
//! break algorithms progressively defeat it.
//!
//! ```text
//! cargo run --release --example denomination_attack
//! ```

use ppms_core::attack::{achievable_sums, deposit_stream, run_denomination_attack};
use ppms_ecash::CashBreak;

fn main() {
    let levels = 8; // payments in [1, 256]
    let n_jobs = 12;
    let trials = 2000;

    println!("== Denomination attack: {n_jobs} concurrent jobs, payments in [1, 2^{levels}] ==\n");

    // A concrete peek first: what the MA sees for w = 8 (the paper's
    // own example value).
    let w = 8;
    for strategy in [
        CashBreak::None,
        CashBreak::Pcba,
        CashBreak::Epcba,
        CashBreak::Unitary,
    ] {
        let stream = deposit_stream(strategy, w, levels);
        let sums = achievable_sums(&stream, levels);
        println!(
            "w = {w:3} under {strategy:?}: deposits {:?} -> {} candidate payment value(s)",
            stream,
            sums.len()
        );
    }

    println!(
        "\n{:<10} {:>22} {:>22}",
        "strategy", "unique-link success", "mean anonymity set"
    );
    for strategy in [
        CashBreak::None,
        CashBreak::Pcba,
        CashBreak::Epcba,
        CashBreak::Unitary,
    ] {
        let report = run_denomination_attack(0xA77AC4, strategy, n_jobs, levels, trials);
        println!(
            "{:<10} {:>21.1}% {:>22.2}",
            format!("{strategy:?}"),
            report.unique_success_rate * 100.0,
            report.mean_candidate_jobs
        );
    }

    println!("\nReading: without breaking, the MA pins the SP's job almost");
    println!("every time. PCBA multiplies the candidate payments (2^k - 1");
    println!("subset sums), EPCBA fixes PCBA's power-of-two weakness, and");
    println!("the unitary break makes the deposit stream featureless.");
}
