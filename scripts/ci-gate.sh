#!/usr/bin/env bash
# Lint gate: formatting + clippy with warnings denied, then the test
# suite. Run before every merge; CI should invoke exactly this script
# so local runs and the gate can never disagree.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> no-op observability config still compiles"
# The virtual workspace root forbids --features; gate each crate that
# forwards the flag so a cfg-gated stub can never rot unbuilt.
for crate in ppms-obs ppms-bigint ppms-crypto ppms-ecash ppms-core ppms-bench ppms-integration; do
    cargo build -p "$crate" --features no-op --quiet
done
# Also proves the no-op feature compiles the span machinery down to
# zero-cost stubs (span_alloc's allocation-counter tests run here).
cargo test -p ppms-obs --features no-op -q

echo "==> observability layer (registry, histograms, percentile accuracy, merge laws)"
cargo test -p ppms-obs -q

echo "==> wire protocol property tests (v3 + legacy v2 frames, split reassembly)"
cargo test -p ppms-core --test wire_props -q
cargo test -p ppms-core --features no-op --test wire_props -q

echo "==> tcp front door (admission gate, eviction, shedding) + transport equivalence"
# Both feature configs: the reactor leans on obs counters for its
# shed/evict decisions' observability, so the no-op build must drive
# the same loopback sockets. transport_equivalence includes the
# batching-equivalence harness: batched concurrent interleavings
# (cheater + same-key retransmit in-batch) ≡ sequential ledgers.
cargo test -p ppms-integration --test tcp_front_door --test transport_equivalence -q
cargo test -p ppms-integration --features no-op --test tcp_front_door --test transport_equivalence -q

echo "==> zero-copy hot path: warmed frame decode+dispatch+reply allocates nothing"
# Counting-allocator proof for the reactor's per-frame path, in both
# feature configs (the no-op build must not hide an obs allocation).
cargo test -p ppms-core --test frame_alloc -q
cargo test -p ppms-core --features no-op --test frame_alloc -q

echo "==> loopback TCP smoke (throughput bench correctness gates + simnet/tcp ledger equality)"
cargo bench -p ppms-bench --bench tcp_front_door -- --test >/dev/null
cargo bench -p ppms-bench --features no-op --bench tcp_front_door -- --test >/dev/null

echo "==> chaos harness (fault injection + shard-crash supervision)"
cargo test -p ppms-integration --test chaos -q
cargo test -p ppms-core --lib -q service::tests::crashed_shard_is_respawned_and_retry_succeeds

echo "==> durable storage tier (crash matrix, compaction bound, disk-backed restart)"
# Both feature configs: the WAL leans on obs counters/gauges for its
# instruments, so the no-op build must drive the same recovery paths.
# The disk-backed smoke inside the suite is tempdir-hermetic (it
# creates and removes its own directory under the system tempdir).
cargo test -p ppms-integration --test recovery -q
cargo test -p ppms-integration --features no-op --test recovery -q

echo "==> recovery bench smoke (replay-length + fsync-discipline gates)"
cargo bench -p ppms-bench --bench recovery -- --test >/dev/null
cargo bench -p ppms-bench --features no-op --bench recovery -- --test >/dev/null

echo "==> open-loop load harness smoke (latency accounting + batching + ledger gates)"
# Both feature configs; the default-config output is additionally
# grepped: cross-client batching must actually engage (mean batch
# size > 1 under load) and the ledger-conservation line must hold.
load_out=$(cargo bench -p ppms-bench --bench load_curve -- --test 2>&1) || {
    echo "$load_out"
    exit 1
}
echo "$load_out" | grep -q "ledger unchanged:" || {
    echo "load_curve smoke never printed its ledger-conservation line:"
    echo "$load_out"
    exit 1
}
mean_batch=$(echo "$load_out" | sed -n 's/.*mean batch size under load \([0-9.]*\).*/\1/p')
awk -v m="${mean_batch:-0}" 'BEGIN { exit !(m > 1.0) }' || {
    echo "load_curve smoke: mean batch size under load must exceed 1, got '${mean_batch:-missing}':"
    echo "$load_out"
    exit 1
}
cargo bench -p ppms-bench --features no-op --bench load_curve -- --test >/dev/null

echo "==> committed bench artifacts carry their schema (BENCH_*.json at the repo root)"
check_keys() {
    local file="$1"; shift
    [ -f "$file" ] || { echo "missing bench artifact: $file"; exit 1; }
    for key in "$@"; do
        grep -q "\"$key\"" "$file" || {
            echo "bench artifact $file lost its \"$key\" field"
            exit 1
        }
    done
}
check_keys BENCH_load.json calibrated_capacity_per_sec knee_per_sec \
    peak_achieved_per_sec mean_batch_size mean_batch_size_under_load \
    p50_ns p99_ns p999_ns ops_scrape
check_keys BENCH_tcp.json requests_per_sec p50_ns p99_ns
check_keys BENCH_recovery.json policy recover_ms replayed
check_keys BENCH_batch.json batch_item_us seq_item_us speedup
check_keys BENCH_fixed.json fixed_us dynamic_us
check_keys BENCH_chaos.json drop_rate availability
check_keys BENCH_obs.json overhead_pct

echo "==> trace context + flight recorder (shard-crash and reactor-panic dumps carry the trace)"
trace_out=$(cargo test -p ppms-integration --test trace_context -- --nocapture 2>&1) || {
    echo "$trace_out"
    exit 1
}
echo "$trace_out" | grep -q "flight-recorder dump:" || {
    echo "trace_context never produced a flight-recorder dump line:"
    echo "$trace_out"
    exit 1
}
# A panic in the TCP reactor thread must also dump (with the in-flight
# span ring embedded), not just the shard workers' crash path.
echo "$trace_out" | grep -q "flight-recorder dump: .*tcp-reactor" || {
    echo "trace_context never dumped from the TCP reactor thread:"
    echo "$trace_out"
    exit 1
}

echo "==> batch-verification equivalence (multi-exp, batch-inv, bisection)"
cargo test -p ppms-bigint --test ring_props -q
cargo test -p ppms-crypto --test props -q
cargo test -p ppms-ecash --lib -q batch::

echo "==> fixed-width core: fixed = dynamic equivalence + zero-allocation proof"
# Both feature configs: the obs spans sit on the routed hot paths, so
# the no-op config must exercise the same dispatch.
cargo test -p ppms-bigint --test fixed_props --test alloc_free -q
cargo test -p ppms-bigint --features no-op --test fixed_props --test alloc_free -q

echo "==> batch_verify bench smoke (correctness pass, no timing gates)"
cargo bench -p ppms-bench --bench batch_verify -- --test >/dev/null
cargo bench -p ppms-bench --features no-op --bench batch_verify -- --test >/dev/null

echo "==> fixed-width ablation bench smoke (fixed = dynamic verdicts)"
cargo bench -p ppms-bench --bench ablation_fixed -- --test >/dev/null
cargo bench -p ppms-bench --features no-op --bench ablation_fixed -- --test >/dev/null

echo "==> cargo test"
cargo test --workspace -q

echo "ci-gate: all checks passed"
