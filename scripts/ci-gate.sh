#!/usr/bin/env bash
# Lint gate: formatting + clippy with warnings denied, then the test
# suite. Run before every merge; CI should invoke exactly this script
# so local runs and the gate can never disagree.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> wire protocol property tests"
cargo test -p ppms-core --test wire_props -q

echo "==> chaos harness (fault injection + shard-crash supervision)"
cargo test -p ppms-integration --test chaos -q
cargo test -p ppms-core --lib -q service::tests::crashed_shard_is_respawned_and_retry_succeeds

echo "==> cargo test"
cargo test --workspace -q

echo "ci-gate: all checks passed"
