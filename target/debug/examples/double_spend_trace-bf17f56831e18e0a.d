/root/repo/target/debug/examples/double_spend_trace-bf17f56831e18e0a.d: crates/integration/../../examples/double_spend_trace.rs

/root/repo/target/debug/examples/double_spend_trace-bf17f56831e18e0a: crates/integration/../../examples/double_spend_trace.rs

crates/integration/../../examples/double_spend_trace.rs:
