/root/repo/target/debug/examples/hiv_study-fcaf2e2da3bd33b7.d: crates/integration/../../examples/hiv_study.rs

/root/repo/target/debug/examples/hiv_study-fcaf2e2da3bd33b7: crates/integration/../../examples/hiv_study.rs

crates/integration/../../examples/hiv_study.rs:
