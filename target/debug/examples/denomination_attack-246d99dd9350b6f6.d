/root/repo/target/debug/examples/denomination_attack-246d99dd9350b6f6.d: crates/integration/../../examples/denomination_attack.rs

/root/repo/target/debug/examples/denomination_attack-246d99dd9350b6f6: crates/integration/../../examples/denomination_attack.rs

crates/integration/../../examples/denomination_attack.rs:
