/root/repo/target/debug/examples/market_sim-55919d7cfcaab1e8.d: crates/integration/../../examples/market_sim.rs

/root/repo/target/debug/examples/market_sim-55919d7cfcaab1e8: crates/integration/../../examples/market_sim.rs

crates/integration/../../examples/market_sim.rs:
