/root/repo/target/debug/examples/quickstart-a373edb002b34894.d: crates/integration/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a373edb002b34894: crates/integration/../../examples/quickstart.rs

crates/integration/../../examples/quickstart.rs:
