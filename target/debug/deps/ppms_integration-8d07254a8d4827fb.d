/root/repo/target/debug/deps/ppms_integration-8d07254a8d4827fb.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/ppms_integration-8d07254a8d4827fb: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
