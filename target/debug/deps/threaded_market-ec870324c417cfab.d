/root/repo/target/debug/deps/threaded_market-ec870324c417cfab.d: crates/integration/../../tests/threaded_market.rs

/root/repo/target/debug/deps/threaded_market-ec870324c417cfab: crates/integration/../../tests/threaded_market.rs

crates/integration/../../tests/threaded_market.rs:
