/root/repo/target/debug/deps/transport_equivalence-9b2db33ef135407c.d: crates/integration/../../tests/transport_equivalence.rs

/root/repo/target/debug/deps/transport_equivalence-9b2db33ef135407c: crates/integration/../../tests/transport_equivalence.rs

crates/integration/../../tests/transport_equivalence.rs:
