/root/repo/target/debug/deps/serde-5a66c649389c14bf.d: /tmp/ppms-deps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5a66c649389c14bf.rmeta: /tmp/ppms-deps/serde/src/lib.rs

/tmp/ppms-deps/serde/src/lib.rs:
