/root/repo/target/debug/deps/report-1e09fe122f0b68aa.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-1e09fe122f0b68aa: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
