/root/repo/target/debug/deps/crossbeam-9fb925dd13222142.d: /tmp/ppms-deps/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-9fb925dd13222142.rmeta: /tmp/ppms-deps/crossbeam/src/lib.rs

/tmp/ppms-deps/crossbeam/src/lib.rs:
