/root/repo/target/debug/deps/ppms_primes-5fea03170ecd57e1.d: crates/primes/src/lib.rs crates/primes/src/cunningham.rs crates/primes/src/gen.rs crates/primes/src/miller_rabin.rs crates/primes/src/sieve.rs

/root/repo/target/debug/deps/ppms_primes-5fea03170ecd57e1: crates/primes/src/lib.rs crates/primes/src/cunningham.rs crates/primes/src/gen.rs crates/primes/src/miller_rabin.rs crates/primes/src/sieve.rs

crates/primes/src/lib.rs:
crates/primes/src/cunningham.rs:
crates/primes/src/gen.rs:
crates/primes/src/miller_rabin.rs:
crates/primes/src/sieve.rs:
