/root/repo/target/debug/deps/props-a5479e9c7d932fe2.d: crates/ecash/tests/props.rs

/root/repo/target/debug/deps/props-a5479e9c7d932fe2: crates/ecash/tests/props.rs

crates/ecash/tests/props.rs:
