/root/repo/target/debug/deps/ppms_bench-d0ddae39ad055730.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libppms_bench-d0ddae39ad055730.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
