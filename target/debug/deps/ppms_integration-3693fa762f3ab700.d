/root/repo/target/debug/deps/ppms_integration-3693fa762f3ab700.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libppms_integration-3693fa762f3ab700.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libppms_integration-3693fa762f3ab700.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
