/root/repo/target/debug/deps/end_to_end_dec-5e1d43a6d83877ec.d: crates/integration/../../tests/end_to_end_dec.rs

/root/repo/target/debug/deps/end_to_end_dec-5e1d43a6d83877ec: crates/integration/../../tests/end_to_end_dec.rs

crates/integration/../../tests/end_to_end_dec.rs:
