/root/repo/target/debug/deps/rayon-6b0faa83fbf795c5.d: /tmp/ppms-deps/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-6b0faa83fbf795c5.rlib: /tmp/ppms-deps/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-6b0faa83fbf795c5.rmeta: /tmp/ppms-deps/rayon/src/lib.rs

/tmp/ppms-deps/rayon/src/lib.rs:
