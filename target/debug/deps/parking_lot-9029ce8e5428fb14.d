/root/repo/target/debug/deps/parking_lot-9029ce8e5428fb14.d: /tmp/ppms-deps/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-9029ce8e5428fb14.rlib: /tmp/ppms-deps/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-9029ce8e5428fb14.rmeta: /tmp/ppms-deps/parking_lot/src/lib.rs

/tmp/ppms-deps/parking_lot/src/lib.rs:
