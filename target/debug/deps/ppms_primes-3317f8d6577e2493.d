/root/repo/target/debug/deps/ppms_primes-3317f8d6577e2493.d: crates/primes/src/lib.rs crates/primes/src/cunningham.rs crates/primes/src/gen.rs crates/primes/src/miller_rabin.rs crates/primes/src/sieve.rs

/root/repo/target/debug/deps/libppms_primes-3317f8d6577e2493.rmeta: crates/primes/src/lib.rs crates/primes/src/cunningham.rs crates/primes/src/gen.rs crates/primes/src/miller_rabin.rs crates/primes/src/sieve.rs

crates/primes/src/lib.rs:
crates/primes/src/cunningham.rs:
crates/primes/src/gen.rs:
crates/primes/src/miller_rabin.rs:
crates/primes/src/sieve.rs:
