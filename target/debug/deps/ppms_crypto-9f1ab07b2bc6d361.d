/root/repo/target/debug/deps/ppms_crypto-9f1ab07b2bc6d361.d: crates/crypto/src/lib.rs crates/crypto/src/cl.rs crates/crypto/src/group.rs crates/crypto/src/hash.rs crates/crypto/src/pairing/mod.rs crates/crypto/src/pairing/curve.rs crates/crypto/src/pairing/fp.rs crates/crypto/src/pairing/fp2.rs crates/crypto/src/pairing/miller.rs crates/crypto/src/pairing/typea.rs crates/crypto/src/pedersen.rs crates/crypto/src/rsa/mod.rs crates/crypto/src/rsa/blind.rs crates/crypto/src/rsa/encrypt.rs crates/crypto/src/rsa/pbs.rs crates/crypto/src/rsa/sign.rs crates/crypto/src/sha256.rs crates/crypto/src/tower.rs crates/crypto/src/zkp/mod.rs crates/crypto/src/zkp/ddlog.rs crates/crypto/src/zkp/eq.rs crates/crypto/src/zkp/orproof.rs crates/crypto/src/zkp/repr.rs crates/crypto/src/zkp/schnorr.rs crates/crypto/src/zkp/transcript.rs

/root/repo/target/debug/deps/ppms_crypto-9f1ab07b2bc6d361: crates/crypto/src/lib.rs crates/crypto/src/cl.rs crates/crypto/src/group.rs crates/crypto/src/hash.rs crates/crypto/src/pairing/mod.rs crates/crypto/src/pairing/curve.rs crates/crypto/src/pairing/fp.rs crates/crypto/src/pairing/fp2.rs crates/crypto/src/pairing/miller.rs crates/crypto/src/pairing/typea.rs crates/crypto/src/pedersen.rs crates/crypto/src/rsa/mod.rs crates/crypto/src/rsa/blind.rs crates/crypto/src/rsa/encrypt.rs crates/crypto/src/rsa/pbs.rs crates/crypto/src/rsa/sign.rs crates/crypto/src/sha256.rs crates/crypto/src/tower.rs crates/crypto/src/zkp/mod.rs crates/crypto/src/zkp/ddlog.rs crates/crypto/src/zkp/eq.rs crates/crypto/src/zkp/orproof.rs crates/crypto/src/zkp/repr.rs crates/crypto/src/zkp/schnorr.rs crates/crypto/src/zkp/transcript.rs

crates/crypto/src/lib.rs:
crates/crypto/src/cl.rs:
crates/crypto/src/group.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/pairing/mod.rs:
crates/crypto/src/pairing/curve.rs:
crates/crypto/src/pairing/fp.rs:
crates/crypto/src/pairing/fp2.rs:
crates/crypto/src/pairing/miller.rs:
crates/crypto/src/pairing/typea.rs:
crates/crypto/src/pedersen.rs:
crates/crypto/src/rsa/mod.rs:
crates/crypto/src/rsa/blind.rs:
crates/crypto/src/rsa/encrypt.rs:
crates/crypto/src/rsa/pbs.rs:
crates/crypto/src/rsa/sign.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/tower.rs:
crates/crypto/src/zkp/mod.rs:
crates/crypto/src/zkp/ddlog.rs:
crates/crypto/src/zkp/eq.rs:
crates/crypto/src/zkp/orproof.rs:
crates/crypto/src/zkp/repr.rs:
crates/crypto/src/zkp/schnorr.rs:
crates/crypto/src/zkp/transcript.rs:
