/root/repo/target/debug/deps/crypto_stack-4954841b7ff3a142.d: crates/integration/../../tests/crypto_stack.rs

/root/repo/target/debug/deps/crypto_stack-4954841b7ff3a142: crates/integration/../../tests/crypto_stack.rs

crates/integration/../../tests/crypto_stack.rs:
