/root/repo/target/debug/deps/ppms_bigint-f03ebfc7aa3b7be0.d: crates/bigint/src/lib.rs crates/bigint/src/arith.rs crates/bigint/src/barrett.rs crates/bigint/src/bigint.rs crates/bigint/src/biguint.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/gcd.rs crates/bigint/src/modular.rs crates/bigint/src/montgomery.rs crates/bigint/src/mul.rs crates/bigint/src/random.rs crates/bigint/src/ring.rs crates/bigint/src/shift.rs

/root/repo/target/debug/deps/libppms_bigint-f03ebfc7aa3b7be0.rmeta: crates/bigint/src/lib.rs crates/bigint/src/arith.rs crates/bigint/src/barrett.rs crates/bigint/src/bigint.rs crates/bigint/src/biguint.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/gcd.rs crates/bigint/src/modular.rs crates/bigint/src/montgomery.rs crates/bigint/src/mul.rs crates/bigint/src/random.rs crates/bigint/src/ring.rs crates/bigint/src/shift.rs

crates/bigint/src/lib.rs:
crates/bigint/src/arith.rs:
crates/bigint/src/barrett.rs:
crates/bigint/src/bigint.rs:
crates/bigint/src/biguint.rs:
crates/bigint/src/convert.rs:
crates/bigint/src/div.rs:
crates/bigint/src/gcd.rs:
crates/bigint/src/modular.rs:
crates/bigint/src/montgomery.rs:
crates/bigint/src/mul.rs:
crates/bigint/src/random.rs:
crates/bigint/src/ring.rs:
crates/bigint/src/shift.rs:
