/root/repo/target/debug/deps/serde_json-e996ff0ccf55865c.d: /tmp/ppms-deps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e996ff0ccf55865c.rlib: /tmp/ppms-deps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e996ff0ccf55865c.rmeta: /tmp/ppms-deps/serde_json/src/lib.rs

/tmp/ppms-deps/serde_json/src/lib.rs:
