/root/repo/target/debug/deps/ring_props-37ee1debe2d2abb2.d: crates/bigint/tests/ring_props.rs

/root/repo/target/debug/deps/ring_props-37ee1debe2d2abb2: crates/bigint/tests/ring_props.rs

crates/bigint/tests/ring_props.rs:
