/root/repo/target/debug/deps/serde_derive-cabb489c83afa6f4.d: /tmp/ppms-deps/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-cabb489c83afa6f4.so: /tmp/ppms-deps/serde_derive/src/lib.rs

/tmp/ppms-deps/serde_derive/src/lib.rs:
