/root/repo/target/debug/deps/rand-ea46cb531c019cdd.d: /tmp/ppms-deps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ea46cb531c019cdd.rmeta: /tmp/ppms-deps/rand/src/lib.rs

/tmp/ppms-deps/rand/src/lib.rs:
