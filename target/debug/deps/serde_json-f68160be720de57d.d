/root/repo/target/debug/deps/serde_json-f68160be720de57d.d: /tmp/ppms-deps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f68160be720de57d.rmeta: /tmp/ppms-deps/serde_json/src/lib.rs

/tmp/ppms-deps/serde_json/src/lib.rs:
