/root/repo/target/debug/deps/parking_lot-c71c193ba0b84dfe.d: /tmp/ppms-deps/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c71c193ba0b84dfe.rmeta: /tmp/ppms-deps/parking_lot/src/lib.rs

/tmp/ppms-deps/parking_lot/src/lib.rs:
