/root/repo/target/debug/deps/crossbeam-beada18c168b52cb.d: /tmp/ppms-deps/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-beada18c168b52cb.rlib: /tmp/ppms-deps/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-beada18c168b52cb.rmeta: /tmp/ppms-deps/crossbeam/src/lib.rs

/tmp/ppms-deps/crossbeam/src/lib.rs:
