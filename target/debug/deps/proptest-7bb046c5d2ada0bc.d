/root/repo/target/debug/deps/proptest-7bb046c5d2ada0bc.d: /tmp/ppms-deps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7bb046c5d2ada0bc.rlib: /tmp/ppms-deps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7bb046c5d2ada0bc.rmeta: /tmp/ppms-deps/proptest/src/lib.rs

/tmp/ppms-deps/proptest/src/lib.rs:
