/root/repo/target/debug/deps/criterion-ae66d53f4917f86c.d: /tmp/ppms-deps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-ae66d53f4917f86c.rlib: /tmp/ppms-deps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-ae66d53f4917f86c.rmeta: /tmp/ppms-deps/criterion/src/lib.rs

/tmp/ppms-deps/criterion/src/lib.rs:
