/root/repo/target/debug/deps/serde-02ed45824e39afbd.d: /tmp/ppms-deps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-02ed45824e39afbd.rlib: /tmp/ppms-deps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-02ed45824e39afbd.rmeta: /tmp/ppms-deps/serde/src/lib.rs

/tmp/ppms-deps/serde/src/lib.rs:
