/root/repo/target/debug/deps/report-5e8b4904f93f5bc0.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-5e8b4904f93f5bc0: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
