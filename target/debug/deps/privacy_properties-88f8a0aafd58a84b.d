/root/repo/target/debug/deps/privacy_properties-88f8a0aafd58a84b.d: crates/integration/../../tests/privacy_properties.rs

/root/repo/target/debug/deps/privacy_properties-88f8a0aafd58a84b: crates/integration/../../tests/privacy_properties.rs

crates/integration/../../tests/privacy_properties.rs:
