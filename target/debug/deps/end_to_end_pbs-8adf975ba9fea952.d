/root/repo/target/debug/deps/end_to_end_pbs-8adf975ba9fea952.d: crates/integration/../../tests/end_to_end_pbs.rs

/root/repo/target/debug/deps/end_to_end_pbs-8adf975ba9fea952: crates/integration/../../tests/end_to_end_pbs.rs

crates/integration/../../tests/end_to_end_pbs.rs:
