/root/repo/target/debug/deps/ppms_bench-743fbfca1c083817.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ppms_bench-743fbfca1c083817: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
