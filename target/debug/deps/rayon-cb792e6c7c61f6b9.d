/root/repo/target/debug/deps/rayon-cb792e6c7c61f6b9.d: /tmp/ppms-deps/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-cb792e6c7c61f6b9.rmeta: /tmp/ppms-deps/rayon/src/lib.rs

/tmp/ppms-deps/rayon/src/lib.rs:
