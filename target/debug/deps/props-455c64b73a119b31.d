/root/repo/target/debug/deps/props-455c64b73a119b31.d: crates/crypto/tests/props.rs

/root/repo/target/debug/deps/props-455c64b73a119b31: crates/crypto/tests/props.rs

crates/crypto/tests/props.rs:
