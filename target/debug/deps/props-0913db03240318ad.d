/root/repo/target/debug/deps/props-0913db03240318ad.d: crates/bigint/tests/props.rs

/root/repo/target/debug/deps/props-0913db03240318ad: crates/bigint/tests/props.rs

crates/bigint/tests/props.rs:
