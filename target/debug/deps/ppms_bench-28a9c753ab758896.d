/root/repo/target/debug/deps/ppms_bench-28a9c753ab758896.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libppms_bench-28a9c753ab758896.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libppms_bench-28a9c753ab758896.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
