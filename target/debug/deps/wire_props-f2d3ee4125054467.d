/root/repo/target/debug/deps/wire_props-f2d3ee4125054467.d: crates/core/tests/wire_props.rs

/root/repo/target/debug/deps/wire_props-f2d3ee4125054467: crates/core/tests/wire_props.rs

crates/core/tests/wire_props.rs:
