/root/repo/target/debug/deps/ppms_ecash-304a3f93bb652d64.d: crates/ecash/src/lib.rs crates/ecash/src/bank.rs crates/ecash/src/brk.rs crates/ecash/src/coin.rs crates/ecash/src/error.rs crates/ecash/src/params.rs crates/ecash/src/spend.rs crates/ecash/src/trace.rs crates/ecash/src/wallet.rs crates/ecash/src/wire.rs

/root/repo/target/debug/deps/libppms_ecash-304a3f93bb652d64.rlib: crates/ecash/src/lib.rs crates/ecash/src/bank.rs crates/ecash/src/brk.rs crates/ecash/src/coin.rs crates/ecash/src/error.rs crates/ecash/src/params.rs crates/ecash/src/spend.rs crates/ecash/src/trace.rs crates/ecash/src/wallet.rs crates/ecash/src/wire.rs

/root/repo/target/debug/deps/libppms_ecash-304a3f93bb652d64.rmeta: crates/ecash/src/lib.rs crates/ecash/src/bank.rs crates/ecash/src/brk.rs crates/ecash/src/coin.rs crates/ecash/src/error.rs crates/ecash/src/params.rs crates/ecash/src/spend.rs crates/ecash/src/trace.rs crates/ecash/src/wallet.rs crates/ecash/src/wire.rs

crates/ecash/src/lib.rs:
crates/ecash/src/bank.rs:
crates/ecash/src/brk.rs:
crates/ecash/src/coin.rs:
crates/ecash/src/error.rs:
crates/ecash/src/params.rs:
crates/ecash/src/spend.rs:
crates/ecash/src/trace.rs:
crates/ecash/src/wallet.rs:
crates/ecash/src/wire.rs:
