/root/repo/target/debug/deps/rand-c87961cb4dda987a.d: /tmp/ppms-deps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c87961cb4dda987a.rlib: /tmp/ppms-deps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c87961cb4dda987a.rmeta: /tmp/ppms-deps/rand/src/lib.rs

/tmp/ppms-deps/rand/src/lib.rs:
