/root/repo/target/debug/deps/ppms_ecash-15d50fcfa752a701.d: crates/ecash/src/lib.rs crates/ecash/src/bank.rs crates/ecash/src/brk.rs crates/ecash/src/coin.rs crates/ecash/src/error.rs crates/ecash/src/params.rs crates/ecash/src/spend.rs crates/ecash/src/trace.rs crates/ecash/src/wallet.rs crates/ecash/src/wire.rs

/root/repo/target/debug/deps/ppms_ecash-15d50fcfa752a701: crates/ecash/src/lib.rs crates/ecash/src/bank.rs crates/ecash/src/brk.rs crates/ecash/src/coin.rs crates/ecash/src/error.rs crates/ecash/src/params.rs crates/ecash/src/spend.rs crates/ecash/src/trace.rs crates/ecash/src/wallet.rs crates/ecash/src/wire.rs

crates/ecash/src/lib.rs:
crates/ecash/src/bank.rs:
crates/ecash/src/brk.rs:
crates/ecash/src/coin.rs:
crates/ecash/src/error.rs:
crates/ecash/src/params.rs:
crates/ecash/src/spend.rs:
crates/ecash/src/trace.rs:
crates/ecash/src/wallet.rs:
crates/ecash/src/wire.rs:
