/root/repo/target/debug/deps/ppms_core-5b9e709d49ac63b5.d: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/bank.rs crates/core/src/bulletin.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/mixnet.rs crates/core/src/ppmsdec.rs crates/core/src/ppmspbs.rs crates/core/src/service.rs crates/core/src/sim.rs crates/core/src/transport.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libppms_core-5b9e709d49ac63b5.rlib: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/bank.rs crates/core/src/bulletin.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/mixnet.rs crates/core/src/ppmsdec.rs crates/core/src/ppmspbs.rs crates/core/src/service.rs crates/core/src/sim.rs crates/core/src/transport.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libppms_core-5b9e709d49ac63b5.rmeta: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/bank.rs crates/core/src/bulletin.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/mixnet.rs crates/core/src/ppmsdec.rs crates/core/src/ppmspbs.rs crates/core/src/service.rs crates/core/src/sim.rs crates/core/src/transport.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/attack.rs:
crates/core/src/bank.rs:
crates/core/src/bulletin.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/mixnet.rs:
crates/core/src/ppmsdec.rs:
crates/core/src/ppmspbs.rs:
crates/core/src/service.rs:
crates/core/src/sim.rs:
crates/core/src/transport.rs:
crates/core/src/wire.rs:
