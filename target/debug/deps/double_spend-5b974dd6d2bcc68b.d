/root/repo/target/debug/deps/double_spend-5b974dd6d2bcc68b.d: crates/integration/../../tests/double_spend.rs

/root/repo/target/debug/deps/double_spend-5b974dd6d2bcc68b: crates/integration/../../tests/double_spend.rs

crates/integration/../../tests/double_spend.rs:
