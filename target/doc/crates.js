window.ALL_CRATES = ["ppms_bench","ppms_bigint","ppms_core","ppms_crypto","ppms_ecash","ppms_integration","ppms_primes","report"];
//{"start":21,"fragment_lengths":[12,14,12,14,13,19,14,9]}