(function() {
    const implementors = Object.fromEntries([["ppms_core",[["impl&lt;'de&gt; Deserialize&lt;'de&gt; for <a class=\"enum\" href=\"ppms_core/service/enum.MaRequest.html\" title=\"enum ppms_core::service::MaRequest\">MaRequest</a>",0],["impl&lt;'de&gt; Deserialize&lt;'de&gt; for <a class=\"enum\" href=\"ppms_core/service/enum.MaResponse.html\" title=\"enum ppms_core::service::MaResponse\">MaResponse</a>",0],["impl&lt;'de&gt; Deserialize&lt;'de&gt; for <a class=\"enum\" href=\"ppms_core/wire/enum.RelayPayload.html\" title=\"enum ppms_core::wire::RelayPayload\">RelayPayload</a>",0],["impl&lt;'de&gt; Deserialize&lt;'de&gt; for <a class=\"struct\" href=\"ppms_core/bank/struct.BankSnapshot.html\" title=\"struct ppms_core::bank::BankSnapshot\">BankSnapshot</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[722]}