(function() {
    const implementors = Object.fromEntries([["ppms_bigint",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.AddAssign.html\" title=\"trait core::ops::arith::AddAssign\">AddAssign</a>&lt;&amp;<a class=\"struct\" href=\"ppms_bigint/struct.BigUint.html\" title=\"struct ppms_bigint::BigUint\">BigUint</a>&gt; for <a class=\"struct\" href=\"ppms_bigint/struct.BigUint.html\" title=\"struct ppms_bigint::BigUint\">BigUint</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[421]}