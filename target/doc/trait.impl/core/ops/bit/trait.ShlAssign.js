(function() {
    const implementors = Object.fromEntries([["ppms_bigint",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/bit/trait.ShlAssign.html\" title=\"trait core::ops::bit::ShlAssign\">ShlAssign</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.usize.html\">usize</a>&gt; for <a class=\"struct\" href=\"ppms_bigint/struct.BigUint.html\" title=\"struct ppms_bigint::BigUint\">BigUint</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[401]}