(function() {
    const implementors = Object.fromEntries([["ppms_bigint",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ppms_bigint/struct.BigUint.html\" title=\"struct ppms_bigint::BigUint\">BigUint</a>",0]]],["ppms_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"enum\" href=\"ppms_core/metrics/enum.Op.html\" title=\"enum ppms_core::metrics::Op\">Op</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"enum\" href=\"ppms_core/metrics/enum.Party.html\" title=\"enum ppms_core::metrics::Party\">Party</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ppms_core/bank/struct.AccountId.html\" title=\"struct ppms_core::bank::AccountId\">AccountId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[267,772]}