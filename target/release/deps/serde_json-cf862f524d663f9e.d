/root/repo/target/release/deps/serde_json-cf862f524d663f9e.d: /tmp/ppms-deps/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-cf862f524d663f9e.rlib: /tmp/ppms-deps/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-cf862f524d663f9e.rmeta: /tmp/ppms-deps/serde_json/src/lib.rs

/tmp/ppms-deps/serde_json/src/lib.rs:
