/root/repo/target/release/deps/criterion-c5f944f6cff4df19.d: /tmp/ppms-deps/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c5f944f6cff4df19.rlib: /tmp/ppms-deps/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c5f944f6cff4df19.rmeta: /tmp/ppms-deps/criterion/src/lib.rs

/tmp/ppms-deps/criterion/src/lib.rs:
