/root/repo/target/release/deps/rand-b3f828430d9a0693.d: /tmp/ppms-deps/rand/src/lib.rs

/root/repo/target/release/deps/librand-b3f828430d9a0693.rlib: /tmp/ppms-deps/rand/src/lib.rs

/root/repo/target/release/deps/librand-b3f828430d9a0693.rmeta: /tmp/ppms-deps/rand/src/lib.rs

/tmp/ppms-deps/rand/src/lib.rs:
