/root/repo/target/release/deps/crossbeam-f91d2242a1716713.d: /tmp/ppms-deps/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f91d2242a1716713.rlib: /tmp/ppms-deps/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f91d2242a1716713.rmeta: /tmp/ppms-deps/crossbeam/src/lib.rs

/tmp/ppms-deps/crossbeam/src/lib.rs:
