/root/repo/target/release/deps/serde_derive-f8298ea7810b0b83.d: /tmp/ppms-deps/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-f8298ea7810b0b83.so: /tmp/ppms-deps/serde_derive/src/lib.rs

/tmp/ppms-deps/serde_derive/src/lib.rs:
