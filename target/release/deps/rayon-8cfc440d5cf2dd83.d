/root/repo/target/release/deps/rayon-8cfc440d5cf2dd83.d: /tmp/ppms-deps/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-8cfc440d5cf2dd83.rlib: /tmp/ppms-deps/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-8cfc440d5cf2dd83.rmeta: /tmp/ppms-deps/rayon/src/lib.rs

/tmp/ppms-deps/rayon/src/lib.rs:
