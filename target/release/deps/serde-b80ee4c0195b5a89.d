/root/repo/target/release/deps/serde-b80ee4c0195b5a89.d: /tmp/ppms-deps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b80ee4c0195b5a89.rlib: /tmp/ppms-deps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b80ee4c0195b5a89.rmeta: /tmp/ppms-deps/serde/src/lib.rs

/tmp/ppms-deps/serde/src/lib.rs:
