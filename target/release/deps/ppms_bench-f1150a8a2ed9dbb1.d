/root/repo/target/release/deps/ppms_bench-f1150a8a2ed9dbb1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libppms_bench-f1150a8a2ed9dbb1.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libppms_bench-f1150a8a2ed9dbb1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
