/root/repo/target/release/deps/ppms_primes-f9f4085a946424c1.d: crates/primes/src/lib.rs crates/primes/src/cunningham.rs crates/primes/src/gen.rs crates/primes/src/miller_rabin.rs crates/primes/src/sieve.rs

/root/repo/target/release/deps/libppms_primes-f9f4085a946424c1.rlib: crates/primes/src/lib.rs crates/primes/src/cunningham.rs crates/primes/src/gen.rs crates/primes/src/miller_rabin.rs crates/primes/src/sieve.rs

/root/repo/target/release/deps/libppms_primes-f9f4085a946424c1.rmeta: crates/primes/src/lib.rs crates/primes/src/cunningham.rs crates/primes/src/gen.rs crates/primes/src/miller_rabin.rs crates/primes/src/sieve.rs

crates/primes/src/lib.rs:
crates/primes/src/cunningham.rs:
crates/primes/src/gen.rs:
crates/primes/src/miller_rabin.rs:
crates/primes/src/sieve.rs:
