/root/repo/target/release/deps/report-5abe7ccfef010593.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-5abe7ccfef010593: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
