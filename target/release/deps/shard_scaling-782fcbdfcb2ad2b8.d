/root/repo/target/release/deps/shard_scaling-782fcbdfcb2ad2b8.d: crates/bench/benches/shard_scaling.rs

/root/repo/target/release/deps/shard_scaling-782fcbdfcb2ad2b8: crates/bench/benches/shard_scaling.rs

crates/bench/benches/shard_scaling.rs:
