/root/repo/target/release/deps/ppms_integration-0eab22d02cbc29bb.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libppms_integration-0eab22d02cbc29bb.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libppms_integration-0eab22d02cbc29bb.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
