/root/repo/target/release/deps/parking_lot-3b78a2f4115f9e16.d: /tmp/ppms-deps/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-3b78a2f4115f9e16.rlib: /tmp/ppms-deps/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-3b78a2f4115f9e16.rmeta: /tmp/ppms-deps/parking_lot/src/lib.rs

/tmp/ppms-deps/parking_lot/src/lib.rs:
