/root/repo/target/release/deps/ppms_ecash-1916f258607eb15e.d: crates/ecash/src/lib.rs crates/ecash/src/bank.rs crates/ecash/src/brk.rs crates/ecash/src/coin.rs crates/ecash/src/error.rs crates/ecash/src/params.rs crates/ecash/src/spend.rs crates/ecash/src/trace.rs crates/ecash/src/wallet.rs crates/ecash/src/wire.rs

/root/repo/target/release/deps/libppms_ecash-1916f258607eb15e.rlib: crates/ecash/src/lib.rs crates/ecash/src/bank.rs crates/ecash/src/brk.rs crates/ecash/src/coin.rs crates/ecash/src/error.rs crates/ecash/src/params.rs crates/ecash/src/spend.rs crates/ecash/src/trace.rs crates/ecash/src/wallet.rs crates/ecash/src/wire.rs

/root/repo/target/release/deps/libppms_ecash-1916f258607eb15e.rmeta: crates/ecash/src/lib.rs crates/ecash/src/bank.rs crates/ecash/src/brk.rs crates/ecash/src/coin.rs crates/ecash/src/error.rs crates/ecash/src/params.rs crates/ecash/src/spend.rs crates/ecash/src/trace.rs crates/ecash/src/wallet.rs crates/ecash/src/wire.rs

crates/ecash/src/lib.rs:
crates/ecash/src/bank.rs:
crates/ecash/src/brk.rs:
crates/ecash/src/coin.rs:
crates/ecash/src/error.rs:
crates/ecash/src/params.rs:
crates/ecash/src/spend.rs:
crates/ecash/src/trace.rs:
crates/ecash/src/wallet.rs:
crates/ecash/src/wire.rs:
