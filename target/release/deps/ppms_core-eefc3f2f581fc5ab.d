/root/repo/target/release/deps/ppms_core-eefc3f2f581fc5ab.d: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/bank.rs crates/core/src/bulletin.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/mixnet.rs crates/core/src/ppmsdec.rs crates/core/src/ppmspbs.rs crates/core/src/service.rs crates/core/src/sim.rs crates/core/src/transport.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libppms_core-eefc3f2f581fc5ab.rlib: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/bank.rs crates/core/src/bulletin.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/mixnet.rs crates/core/src/ppmsdec.rs crates/core/src/ppmspbs.rs crates/core/src/service.rs crates/core/src/sim.rs crates/core/src/transport.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libppms_core-eefc3f2f581fc5ab.rmeta: crates/core/src/lib.rs crates/core/src/attack.rs crates/core/src/bank.rs crates/core/src/bulletin.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/mixnet.rs crates/core/src/ppmsdec.rs crates/core/src/ppmspbs.rs crates/core/src/service.rs crates/core/src/sim.rs crates/core/src/transport.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/attack.rs:
crates/core/src/bank.rs:
crates/core/src/bulletin.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/mixnet.rs:
crates/core/src/ppmsdec.rs:
crates/core/src/ppmspbs.rs:
crates/core/src/service.rs:
crates/core/src/sim.rs:
crates/core/src/transport.rs:
crates/core/src/wire.rs:
