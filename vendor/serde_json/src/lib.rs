//! Minimal offline stand-in for `serde_json`: compiles the call-sites;
//! emits a placeholder document (the report binary is not part of the
//! verified test surface in offline builds).

use serde::Serialize;

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

pub fn to_string_pretty<T: Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}
