//! Minimal offline stand-in for `rayon`: the parallel-iterator surface
//! the workspace uses, executed sequentially. Correctness-equivalent;
//! the real crate supplies the parallelism in networked builds.

pub mod prelude {
    /// Sequential "parallel" iterator wrapper.
    pub struct Par<I>(I);

    pub trait ParallelIterator: Sized {
        type Inner: Iterator;
        fn into_inner_iter(self) -> Self::Inner;

        fn map<F, O>(self, f: F) -> Par<std::iter::Map<Self::Inner, F>>
        where
            F: FnMut(<Self::Inner as Iterator>::Item) -> O,
        {
            Par(self.into_inner_iter().map(f))
        }

        fn filter_map<F, O>(self, f: F) -> Par<std::iter::FilterMap<Self::Inner, F>>
        where
            F: FnMut(<Self::Inner as Iterator>::Item) -> Option<O>,
        {
            Par(self.into_inner_iter().filter_map(f))
        }

        fn filter<F>(self, f: F) -> Par<std::iter::Filter<Self::Inner, F>>
        where
            F: FnMut(&<Self::Inner as Iterator>::Item) -> bool,
        {
            Par(self.into_inner_iter().filter(f))
        }

        fn collect<C>(self) -> C
        where
            C: FromIterator<<Self::Inner as Iterator>::Item>,
        {
            self.into_inner_iter().collect()
        }

        fn find_map_any<F, O>(self, f: F) -> Option<O>
        where
            F: Fn(<Self::Inner as Iterator>::Item) -> Option<O>,
        {
            self.into_inner_iter().find_map(f)
        }

        fn find_any<F>(self, f: F) -> Option<<Self::Inner as Iterator>::Item>
        where
            F: Fn(&<Self::Inner as Iterator>::Item) -> bool,
        {
            self.into_inner_iter().find(f)
        }

        fn for_each<F>(self, f: F)
        where
            F: FnMut(<Self::Inner as Iterator>::Item),
        {
            self.into_inner_iter().for_each(f)
        }

        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<<Self::Inner as Iterator>::Item>,
        {
            self.into_inner_iter().sum()
        }

        fn count(self) -> usize {
            self.into_inner_iter().count()
        }

        fn enumerate(self) -> Par<std::iter::Enumerate<Self::Inner>> {
            Par(self.into_inner_iter().enumerate())
        }
    }

    impl<I: Iterator> ParallelIterator for Par<I> {
        type Inner = I;
        fn into_inner_iter(self) -> I {
            self.0
        }
    }

    pub trait IntoParallelIterator {
        type SeqIter: Iterator;
        fn into_par_iter(self) -> Par<Self::SeqIter>;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type SeqIter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Par<Self::SeqIter> {
            Par(self.into_iter())
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type SeqIter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Par<Self::SeqIter> {
            Par(self)
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type SeqIter = std::ops::Range<u64>;
        fn into_par_iter(self) -> Par<Self::SeqIter> {
            Par(self)
        }
    }

    pub trait IntoParallelRefIterator<'data> {
        type SeqIter: Iterator;
        fn par_iter(&'data self) -> Par<Self::SeqIter>;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type SeqIter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Par<Self::SeqIter> {
            Par(self.iter())
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type SeqIter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Par<Self::SeqIter> {
            Par(self.iter())
        }
    }

    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par(self.chunks(chunk_size))
        }
    }

    pub trait IntoParallelRefMutIterator<'data> {
        type SeqIter: Iterator;
        fn par_iter_mut(&'data mut self) -> Par<Self::SeqIter>;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type SeqIter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Par<Self::SeqIter> {
            Par(self.iter_mut())
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type SeqIter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Par<Self::SeqIter> {
            Par(self.iter_mut())
        }
    }
}
