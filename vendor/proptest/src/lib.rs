//! Minimal offline stand-in for `proptest`: a tiny property-testing
//! framework with the macro/strategy surface the workspace uses.
//! Deterministic per test name; no shrinking.

pub mod test_runner {
    /// RNG for strategy generation (xorshift64*).
    #[derive(Clone, Debug)]
    pub struct TestRng(pub u64);

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng(seed | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    pub trait Strategy {
        type Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                reason: reason.into(),
            }
        }

        fn prop_flat_map<O: Strategy, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// `Strategy` is used behind references in generic positions.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    pub struct BoxedStrategy<T>(std::rc::Rc<dyn ObjectSafeStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    pub trait ObjectSafeStrategy {
        type Value;
        fn gen_obj(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> ObjectSafeStrategy for S {
        type Value = S::Value;
        fn gen_obj(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_obj(rng)
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) reason: String,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "proptest stub: filter '{}' rejected 1000 candidates",
                self.reason
            )
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn gen_value(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let v = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                    ((self.start as u128) + v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let v = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                    ((lo as u128) + v) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Any<T> {
            Any(std::marker::PhantomData)
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any::new()
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<u128> {
        type Value = u128;
        fn gen_value(&self, rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }
    impl Arbitrary for u128 {
        type Strategy = Any<u128>;
        fn arbitrary() -> Any<u128> {
            Any::new()
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any::new()
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            // Finite, moderately sized values.
            (rng.next_u64() as i64 as f64) / (1u64 << 20) as f64
        }
    }
    impl Arbitrary for f64 {
        type Strategy = Any<f64>;
        fn arbitrary() -> Any<f64> {
            Any::new()
        }
    }

    macro_rules! any_tuple {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                type Strategy = ($($t::Strategy,)+);
                fn arbitrary() -> Self::Strategy {
                    ($($t::arbitrary(),)+)
                }
            }
        )*};
    }
    any_tuple! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        type Strategy = AnyArray<T, N>;
        fn arbitrary() -> AnyArray<T, N> {
            AnyArray(std::marker::PhantomData)
        }
    }

    pub struct AnyArray<T, const N: usize>(std::marker::PhantomData<T>);

    impl<T: Arbitrary, const N: usize> Strategy for AnyArray<T, N> {
        type Value = [T; N];
        fn gen_value(&self, rng: &mut TestRng) -> [T; N] {
            let strat = T::arbitrary();
            std::array::from_fn(|_| strat.gen_value(rng))
        }
    }
}

pub fn any<A: arbitrary::Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// Size specifications accepted by `vec`.
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo + 1) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// FNV-1a over a string — used by the macro to derive per-test seeds.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl $cfg; $($rest)*}
    };
    (@impl $cfg:expr;
        $(
            #[test]
            fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::test_runner::TestRng::new(
                        $crate::fnv(stringify!($name))
                            ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg =
                                    $crate::strategy::Strategy::gen_value(&$strat, &mut prop_rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl $crate::test_runner::Config::default(); $($rest)*}
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
