//! Minimal offline stand-in for `serde_derive`: emits marker-trait
//! impls only (the stub `serde` traits have no required methods).
//! Handles plain (non-generic) structs and enums, which is all the
//! workspace derives.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find struct/enum name");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
