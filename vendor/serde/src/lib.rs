//! Minimal offline stand-in for `serde`: marker traits plus the derive
//! re-exports. `serde_json`'s stub emits placeholder output, so the
//! traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

macro_rules! impl_marker {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_marker!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
