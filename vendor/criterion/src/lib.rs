//! Minimal offline stand-in for `criterion`: runs each benchmark body
//! a few times and prints rough timings. API-compatible with the
//! subset the workspace benches use.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub struct Bencher {
    iters: u32,
    pub(crate) elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed() / self.iters;
    }

    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut f: F,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            total += t0.elapsed();
        }
        self.elapsed = total / self.iters;
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    iters: u32,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // The stub runs far fewer iterations than real criterion; keep
        // a floor so timings are not pure noise.
        self.iters = (n as u32).clamp(2, 20);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {}/{}: {:?}/iter", self.name, id, b.elapsed);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        println!("bench {}/{}: {:?}/iter", self.name, id, b.elapsed);
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
            iters: 5,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {}: {:?}/iter", id, b.elapsed);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
