//! Minimal offline stand-in for the `rand` crate, API-compatible with
//! the subset this workspace uses. Deterministic xoshiro256** core.

pub trait RngCore {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types `random_range` can produce.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_incl: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_incl: Self) -> Self {
                let span = (hi_incl as u128).wrapping_sub(lo as u128);
                if span == u128::MAX {
                    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return v as $t;
                }
                let span = span + 1;
                // Double-width sample is far wider than any span here;
                // modulo bias is negligible for a test stand-in.
                let v = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                ((lo as u128).wrapping_add(v)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Ranges acceptable to `random_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleRangeExclusive> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        // Exclusive hi: for floats use hi directly (measure-zero edge),
        // for ints the integer impl treats hi as inclusive, so back off.
        T::sample_range_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_range(rng, lo, hi)
    }
}

/// Helper giving integer types an exclusive upper bound.
#[doc(hidden)]
pub trait SampleRangeExclusive: SampleUniform {
    fn sample_range_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_excl_int {
    ($($t:ty),*) => {$(
        impl SampleRangeExclusive for $t {
            fn sample_range_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                <$t as SampleUniform>::sample_range(rng, lo, hi - 1)
            }
        }
    )*};
}
impl_excl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRangeExclusive for f64 {
    fn sample_range_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        <f64 as SampleUniform>::sample_range(rng, lo, hi)
    }
}

pub trait Rng: RngCore {
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as SampleUniform>::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// rand 0.10 exposes the extension methods under this name as well.
pub use Rng as RngExt;

/// Types with a "standard" distribution (for `rng.random()`).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

/// Seeds a fresh RNG from a global counter (stand-in for OS entropy;
/// deterministic per process which is fine for tests and benches).
pub fn make_rng<R: SeedableRng>() -> R {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CTR: AtomicU64 = AtomicU64::new(0x243F6A8885A308D3);
    let n = CTR.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
    R::seed_from_u64(n)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — deterministic, fast, good enough statistical
    /// quality for test vectors. NOT the real StdRng (ChaCha12); only
    /// determinism within this stand-in matters.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Inherent mirrors of the `RngCore` methods so callers with a
        /// concrete `StdRng` need no trait import (matches how the
        /// workspace uses the real crate).
        pub fn fill_bytes(&mut self, dest: &mut [u8]) {
            RngCore::fill_bytes(self, dest)
        }

        pub fn next_u32_inherent(&mut self) -> u32 {
            RngCore::next_u32(self)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, SampleUniform};

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = <usize as SampleUniform>::sample_range(rng, 0, i);
                self.swap(i, j);
            }
        }
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[<usize as SampleUniform>::sample_range(rng, 0, self.len() - 1)])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{make_rng, Rng, RngCore, SeedableRng};
}
