//! Minimal offline stand-in for `crossbeam`: MPMC channels built on
//! `std::sync::mpsc` behind a shared receiver lock.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a non-blocking send was refused.
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "Full(..)",
                TrySendError::Disconnected(_) => "Disconnected(..)",
            })
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Why a bounded-wait receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// No message waiting and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting right now.
        Empty,
        /// No message waiting and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Tx<T> {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Non-blocking send: fails with `Full` instead of waiting
        /// when a bounded channel is at capacity (an unbounded
        /// channel is never full).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// MPMC receiver: clones share one underlying mpsc receiver. A
    /// blocked `recv` holds the lock, which serializes consumers — the
    /// semantics (each message delivered to exactly one receiver) match
    /// crossbeam; only wakeup fairness differs, which the workspace
    /// does not rely on.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv()
                .map_err(|_| RecvError)
        }

        /// Bounded-wait receive. Note the shared-receiver lock is held
        /// for the wait, like `recv` — consumers serialize.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(Tx::Unbounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }
}
